// distributed_grep — the compute-to-data demo (paper §5's BLAST pattern,
// with grep standing in for BLAST): split a text file into line-aligned
// chunks, broadcast them to every live worker (`replica = -1`, the paper's
// data-driven master/worker corpus), then submit ONE job whose tasks ride
// the replicas — the Job Service places each task on a host that already
// caches its chunk, the workers' TaskRunners fork grep over the local
// bytes, and the result datums flow back (affinity to a collector datum
// pinned on this process's embedded reservoir node) over the peer data
// plane, where they are merged in task order.
//
//   distributed_grep --connect HOST:PORT --file PATH --pattern PAT --out PATH
//                    [--chunks N] [--workers N] [--wait S] [--timeout S]
//                    [--task-sleep S] [--cache DIR] [--name N]
//
//   --connect HOST:PORT  the bitdewd daemon (required)
//   --file PATH          local text file to grep (required)
//   --pattern PAT        fixed `grep -e` pattern (required)
//   --out PATH           merged result file (required)
//   --chunks N           line-aligned corpus chunks == tasks (default 8)
//   --workers N          wait for N live workers before submitting
//                        (default 0 = submit immediately)
//   --wait S             overall deadline in seconds (default 120)
//   --timeout S          per-task execution timeout (default 60)
//   --task-sleep S       prefix every task with `sleep S` — widens the
//                        window for the CI gate to kill a worker mid-job
//                        (default 0)
//   --cache DIR          the embedded collector node's cache (default: a
//                        fresh directory under the system temp dir)
//   --name N             collector host name in ds_sync (default
//                        "grep-collector")
//
// Exit status: 0 and a "grep complete" line with the data-local fraction on
// success; 1 on any failure (submission rejected, task terminally failed,
// deadline). The merged output is byte-identical to `grep -e PAT FILE` run
// locally — the live-jobs CI gate diffs exactly that, across a kill -9.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "api/session.hpp"
#include "jobs/job_types.hpp"
#include "runtime/node_runtime.hpp"
#include "util/log.hpp"

using namespace bitdew;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT --file PATH --pattern PAT --out PATH"
               " [--chunks N] [--workers N] [--wait S] [--timeout S]"
               " [--task-sleep S] [--cache DIR] [--name N]\n",
               argv0);
  return 2;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Splits `text` into at most `chunks` pieces, each ending on a newline
/// (the last piece takes any unterminated tail), so every grep sees whole
/// lines and the concatenation of all pieces is the original file.
std::vector<std::string> split_lines(const std::string& text, int chunks) {
  std::vector<std::string> pieces;
  const std::size_t target = text.size() / static_cast<std::size_t>(chunks) + 1;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = begin + target;
    if (end >= text.size()) {
      end = text.size();
    } else {
      const std::size_t newline = text.find('\n', end);
      end = newline == std::string::npos ? text.size() : newline + 1;
    }
    pieces.push_back(text.substr(begin, end - begin));
    begin = end;
  }
  return pieces;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target, file_path, pattern, out_path, cache_dir;
  std::string collector_name = "grep-collector";
  int chunks = 8;
  int workers = 0;
  double wait_s = 120;
  double timeout_s = 60;
  double task_sleep_s = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* value = nullptr;
    if (arg == "--connect" && (value = next())) target = value;
    else if (arg == "--file" && (value = next())) file_path = value;
    else if (arg == "--pattern" && (value = next())) pattern = value;
    else if (arg == "--out" && (value = next())) out_path = value;
    else if (arg == "--chunks" && (value = next())) chunks = std::atoi(value);
    else if (arg == "--workers" && (value = next())) workers = std::atoi(value);
    else if (arg == "--wait" && (value = next())) wait_s = std::atof(value);
    else if (arg == "--timeout" && (value = next())) timeout_s = std::atof(value);
    else if (arg == "--task-sleep" && (value = next())) task_sleep_s = std::atof(value);
    else if (arg == "--cache" && (value = next())) cache_dir = value;
    else if (arg == "--name" && (value = next())) collector_name = value;
    else return usage(argv[0]);
  }
  if (target.empty() || file_path.empty() || pattern.empty() || out_path.empty() ||
      chunks <= 0 || wait_s <= 0) {
    return usage(argv[0]);
  }
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "distributed_grep: expected HOST:PORT, got '%s'\n", target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "distributed_grep: bad port in '%s'\n", target.c_str());
    return 2;
  }

  // Many processes mint AUIDs against one daemon: unique prefix per run.
  std::random_device entropy;
  util::reseed_auid((static_cast<std::uint64_t>(entropy()) << 32) ^ entropy() ^
                    static_cast<std::uint64_t>(
                        std::chrono::steady_clock::now().time_since_epoch().count()) ^
                    (static_cast<std::uint64_t>(::getpid()) << 16));
  util::set_log_level(util::LogLevel::kWarn);

  std::string text;
  {
    std::ifstream in(file_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "distributed_grep: cannot read %s\n", file_path.c_str());
      return 1;
    }
    text.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const std::vector<std::string> pieces = split_lines(text, chunks);
  if (pieces.empty()) {
    std::fprintf(stderr, "distributed_grep: %s is empty\n", file_path.c_str());
    return 1;
  }

  if (cache_dir.empty()) {
    cache_dir = (std::filesystem::temp_directory_path() /
                 ("distributed_grep_" + std::to_string(::getpid())))
                    .string();
  }

  // The embedded reservoir node: results ride their affinity to the
  // collector datum pinned here, so THIS process's cache receives them.
  runtime::NodeRuntimeConfig node_config;
  node_config.name = collector_name;
  node_config.cache_dir = cache_dir;
  runtime::NodeRuntime node(host, static_cast<std::uint16_t>(port), node_config);
  const api::Status started = node.start();
  if (!started.ok()) {
    std::fprintf(stderr, "distributed_grep: %s\n", started.error().to_string().c_str());
    return 1;
  }

  api::RemoteServiceBus bus(host, static_cast<std::uint16_t>(port));
  api::BitDew bitdew(bus, collector_name);
  api::ActiveData active_data(bus, collector_name);
  api::Session session(bitdew, active_data);

  const double deadline = now_s() + wait_s;
  auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "distributed_grep: %s\n", message.c_str());
    node.stop();
    return 1;
  };

  if (workers > 0) {
    std::printf("distributed_grep: waiting for %d live worker(s)\n", workers);
    for (;;) {
      int alive = 0;
      api::Expected<std::vector<services::HostInfo>> hosts =
          api::Error{api::Errc::kUnavailable, "cli", "pending"};
      bus.ds_hosts([&](api::Expected<std::vector<services::HostInfo>> reply) {
        hosts = std::move(reply);
      });
      if (hosts.ok()) {
        for (const services::HostInfo& info : *hosts) {
          if (info.alive && info.name != collector_name) ++alive;
        }
      }
      if (alive >= workers) break;
      if (now_s() > deadline) return fail("timed out waiting for workers");
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  }

  // Per-run tag: the daemon outlives this process, so datum names must not
  // collide with a previous invocation's corpus (same name, different
  // bytes is a typed duplicate rejection).
  const std::string run_tag = util::next_auid().str().substr(0, 8);

  // The collector datum: zero-size, pinned to the embedded node. Results
  // declare affinity to it (and a relative lifetime on it), so they are
  // placed here and die with it — the paper's Collector pattern.
  const api::Expected<core::Data> collector =
      session.create_data(collector_name + "-" + run_tag);
  if (!collector.ok()) return fail("collector: " + collector.error().to_string());
  core::DataAttributes collector_attributes;
  collector_attributes.name = "grep-collector";
  collector_attributes.replica = 0;  // placement comes from the pin alone
  const api::Status scheduled = session.schedule(*collector, collector_attributes);
  if (!scheduled.ok()) return fail("collector: " + scheduled.error().to_string());
  api::Status pinned = api::ok_status();
  bus.ds_pin(collector->uid, collector_name, [&](api::Status reply) { pinned = reply; });
  if (!pinned.ok()) return fail("pin: " + pinned.error().to_string());
  node.sync_now();
  if (!node.wait_for(collector->uid, wait_s)) {
    return fail("collector datum never arrived at the embedded node");
  }

  // The corpus: each chunk uploaded for real, then broadcast — replica=-1
  // puts a copy on every live reservoir host, fault-tolerant so crashed
  // copies re-place, over the peer plane so workers seed each other.
  const std::filesystem::path stage =
      std::filesystem::path(cache_dir) / "stage";
  std::filesystem::create_directories(stage);
  std::vector<util::Auid> inputs;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const std::string chunk_path = (stage / ("chunk-" + std::to_string(i))).string();
    std::ofstream out(chunk_path, std::ios::binary | std::ios::trunc);
    out.write(pieces[i].data(), static_cast<std::streamsize>(pieces[i].size()));
    out.close();
    const api::Expected<core::Data> chunk = session.put_file(
        "grep-" + run_tag + "-chunk-" + std::to_string(i), chunk_path);
    if (!chunk.ok()) return fail("chunk upload: " + chunk.error().to_string());
    core::DataAttributes attributes;
    attributes.name = "grep-corpus";
    attributes.replica = core::kReplicaAll;
    attributes.fault_tolerant = true;
    attributes.protocol = "p2p";
    const api::Status broadcast = session.schedule(*chunk, attributes);
    if (!broadcast.ok()) return fail("chunk schedule: " + broadcast.error().to_string());
    inputs.push_back(chunk->uid);
  }
  std::printf("distributed_grep: %zu chunk(s) broadcast (%zu bytes)\n", pieces.size(),
              text.size());

  // One job, one task per chunk. The sh wrapper tolerates grep's exit 1
  // ("no lines matched" is a valid empty result, not a task failure) and
  // the optional sleep widens the kill window for the fault-injection gate.
  jobs::JobSpec spec;
  spec.uid = util::next_auid();
  spec.name = "grep";
  std::string command = "grep -e \"$0\" -- \"$1\" > \"$2\" || [ $? -eq 1 ]";
  if (task_sleep_s > 0) {
    command = "sleep " + std::to_string(task_sleep_s) + "; " + command;
  }
  spec.argv = {"/bin/sh", "-c", command, pattern, "{input}", "{output}"};
  spec.timeout_s = timeout_s;
  spec.inputs = inputs;
  spec.collector = collector->uid;
  api::Expected<util::Auid> submitted =
      api::Error{api::Errc::kUnavailable, "cli", "pending"};
  bus.job_submit(spec, [&](api::Expected<util::Auid> reply) { submitted = std::move(reply); });
  if (!submitted.ok()) return fail("submit: " + submitted.error().to_string());
  std::printf("distributed_grep: job %s submitted, %zu task(s)\n",
              submitted->str().c_str(), inputs.size());

  // Poll to completion; any terminally failed task fails the demo.
  jobs::JobStatusInfo status;
  std::int32_t last_done = -1;
  for (;;) {
    api::Expected<jobs::JobStatusInfo> reply =
        api::Error{api::Errc::kUnavailable, "cli", "pending"};
    bus.job_status(*submitted, [&](api::Expected<jobs::JobStatusInfo> r) { reply = std::move(r); });
    if (reply.ok()) {
      status = *reply;
      if (status.done != last_done) {
        last_done = status.done;
        std::printf("distributed_grep: %d/%d done (%d running, %d re-placed)\n",
                    status.done, status.total, status.running, status.replaced);
        std::fflush(stdout);
      }
      if (status.failed > 0) return fail("a task failed terminally");
      if (status.complete()) break;
    }
    if (now_s() > deadline) return fail("timed out waiting for the job");
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }

  // Results are scheduled with affinity to the collector datum: they land
  // in this node's cache over the peer plane. Merge them in task order —
  // chunking was line-aligned, so the concatenation is exactly local grep.
  std::ofstream merged(out_path, std::ios::binary | std::ios::trunc);
  if (!merged) return fail("cannot write " + out_path);
  for (const jobs::TaskInfo& task : status.tasks) {
    if (!node.wait_for(task.result, deadline - now_s())) {
      return fail("result for task " + std::to_string(task.index) + " never arrived");
    }
    std::ifstream part(node.replica_path(task.result), std::ios::binary);
    merged << part.rdbuf();
    // An empty result (grep matched nothing in that chunk — a zero-size
    // datum with no replica file) inserts zero characters, which sets
    // failbit on the SINK and would silently swallow every later part.
    merged.clear();
  }
  merged.close();

  const double local_pct = 100.0 * status.data_local_fraction();
  std::printf("distributed_grep: grep complete — %d task(s), %d/%d data-local (%.0f%%), "
              "%d re-placed, merged into %s\n",
              status.total, status.data_local, status.done, local_pct, status.replaced,
              out_path.c_str());
  node.stop();
  return 0;
}
