// Figures 3b/3c: the overhead of the BitDew machinery when driving FTP,
// against FTP alone — as a percentage of the transfer time (3b) and in
// seconds (3c). BitDew's DT monitors transfers every 500 ms and reservoirs
// synchronize with the DS every 1 s (the paper's stress settings); all that
// control traffic consumes real bandwidth on the simulated network, so the
// overhead emerges from the same mechanism the paper identifies
// ("mainly due to the bandwidth consumed by the BitDew protocol").
#include "bench_common.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "transfer/ftp.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

/// BitDew + FTP (the fig3a machinery, FTP only).
double bitdew_ftp(std::int64_t bytes, int nodes) {
  sim::Simulator sim(29);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", nodes + 1});
  runtime::SimRuntimeConfig config;
  config.dt_monitor_period_s = 0.5;            // paper: monitor every 500 ms
  config.scheduler.heartbeat_period_s = 1.0;   // paper: sync every second
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0], config);

  runtime::SimNode& master = runtime.add_node(cluster.hosts[0], false);
  int completed = 0;
  double last_done = 0;
  for (int i = 1; i <= nodes; ++i) {
    runtime::SimNode& node = runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)]);
    struct Done final : core::ActiveDataEventHandler {
      int* completed;
      double* last_done;
      sim::Simulator* sim;
      void on_data_copy(const core::Data&, const core::DataAttributes&) override {
        ++*completed;
        *last_done = sim->now();
      }
    };
    auto handler = std::make_shared<Done>();
    handler->completed = &completed;
    handler->last_done = &last_done;
    handler->sim = &sim;
    node.active_data().add_callback(handler);
  }

  const core::Content content = core::synthetic_content(7, bytes);
  const core::Data data = master.bitdew().create_data("payload", content);
  master.bitdew().put(data, content, nullptr, "ftp");
  core::DataAttributes attributes;
  attributes.replica = core::kReplicaAll;
  attributes.protocol = "ftp";
  const double start = sim.now();
  master.active_data().schedule(data, attributes);

  while (completed < nodes && sim.now() < 40000) sim.run_until(sim.now() + 5.0);
  return completed == nodes ? last_done - start : -1;
}

/// FTP alone: the same N downloads with no BitDew protocol around them.
double raw_ftp(std::int64_t bytes, int nodes) {
  sim::Simulator sim(29);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", nodes + 1});
  transfer::FtpProtocol ftp(sim, net);

  core::Data data;
  data.uid = util::next_auid();
  data.name = "raw";
  data.size = bytes;
  data.checksum = core::synthetic_content(7, bytes).checksum;

  int completed = 0;
  double last_done = 0;
  for (int i = 1; i <= nodes; ++i) {
    transfer::TransferJob job;
    job.data = data;
    job.source = cluster.hosts[0];
    job.destination = cluster.hosts[static_cast<std::size_t>(i)];
    ftp.start(job, [&](const transfer::TransferOutcome& outcome) {
      if (outcome.ok) {
        ++completed;
        last_done = outcome.finished_at;
      }
    });
  }
  sim.run();
  return completed == nodes ? last_done : -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const std::vector<std::int64_t> sizes =
      full ? std::vector<std::int64_t>{10, 50, 100, 250, 500}
           : std::vector<std::int64_t>{10, 100, 500};
  const std::vector<int> node_counts = full ? std::vector<int>{10, 20, 50, 100, 150, 200, 250}
                                            : std::vector<int>{10, 50, 150};

  header("Figures 3b/3c — BitDew+FTP overhead vs FTP alone",
         "paper Fig. 3b (percent) and Fig. 3c (seconds)");
  std::printf("%-10s %-8s | %10s %12s | %10s %12s\n", "size(MB)", "nodes", "ftp(s)",
              "bitdew(s)", "ovhd(%)", "ovhd(s)");
  rule(76);
  for (const std::int64_t mb : sizes) {
    for (const int nodes : node_counts) {
      const double raw = raw_ftp(mb * util::kMB, nodes);
      const double managed = bitdew_ftp(mb * util::kMB, nodes);
      const double overhead_s = managed - raw;
      const double overhead_pct = raw > 0 ? 100.0 * overhead_s / raw : 0;
      std::printf("%-10lld %-8d | %10.2f %12.2f | %10.2f %12.2f\n",
                  static_cast<long long>(mb), nodes, raw, managed, overhead_pct, overhead_s);
    }
  }
  std::printf("\nexpected shape (paper): percentage overhead highest for small files on\n"
              "few nodes (fixed setup RPCs dominate short transfers); absolute seconds\n"
              "grow with size and node count (control traffic consumes bandwidth).\n");
  return 0;
}
