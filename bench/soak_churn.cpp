// Fleet-scale churn soak: an in-process bitdewd under a fleet of live
// NodeRuntime workers marched through join -> steady -> kill-storm ->
// rejoin-with-cache by testbed::ChurnHarness, reporting ds_sync latency
// percentiles, beats/sec, bytes-per-beat and recovery lag per phase.
//
//   soak_churn --real [--nodes N] [--datums D] [--heartbeat S] [--steady S]
//              [--kill-fraction F] [--workers N --worker-bin PATH]
//              [--gate-p99-ms MS] [--gate-delta-bytes BYTES] [--json PATH]
//
// The two --gate-* flags turn the bench into a CI check: it exits non-zero
// when the steady-state sync p99 exceeds the budget or when the mean
// steady-state delta request exceeds the byte budget — the latter is the
// O(Δ) guarantee of sync protocol v2 (an idle fleet's beats must not scale
// with cache size). Without --real the bench prints a pointer and exits:
// the simulated churn equivalents live in tests/test_soak.cpp.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "testbed/churn_harness.hpp"

namespace bitdew {
namespace {

using bench::flag_value;
using bench::has_flag;
using bench::int_flag;

double double_flag(int argc, char** argv, const char* flag, double fallback) {
  const char* value = flag_value(argc, argv, flag);
  return value != nullptr ? std::atof(value) : fallback;
}

int run_real(int argc, char** argv) {
  testbed::ChurnConfig config;
  config.nodes = int_flag(argc, argv, "--nodes", 1000);
  config.datums = int_flag(argc, argv, "--datums", 16);
  config.heartbeat_period_s = double_flag(argc, argv, "--heartbeat", 1.0);
  config.steady_s = double_flag(argc, argv, "--steady", 10.0);
  config.kill_fraction = double_flag(argc, argv, "--kill-fraction", 0.25);
  config.real_workers = int_flag(argc, argv, "--workers", 0);
  if (const char* bin = flag_value(argc, argv, "--worker-bin")) config.worker_bin = bin;
  if (config.real_workers > 0 && config.worker_bin.empty()) {
    std::fprintf(stderr, "soak_churn: --workers needs --worker-bin PATH\n");
    return 2;
  }
  config.join_timeout_s = double_flag(argc, argv, "--join-timeout", 300.0);
  config.recovery_timeout_s = double_flag(argc, argv, "--recovery-timeout", 300.0);

  bench::header("soak_churn --real", "fleet-scale churn soak over sync protocol v2");
  std::printf("fleet: %d in-process nodes + %d worker processes, %d broadcast datums, "
              "heartbeat %.2fs\n\n",
              config.nodes, config.real_workers, config.datums, config.heartbeat_period_s);

  testbed::ChurnHarness harness(config);
  const api::Status started = harness.start();
  if (!started.ok()) {
    std::fprintf(stderr, "soak_churn: start failed: %s\n", started.error().to_string().c_str());
    return 1;
  }
  const testbed::SoakReport report = harness.run();

  bench::JsonEmitter json("soak_churn", argc, argv);
  std::printf("%-8s %9s %9s %7s %7s %9s %9s %9s %10s %11s\n", "phase", "beats", "failed",
              "full", "delta", "p50 ms", "p95 ms", "p99 ms", "beats/s", "B/beat(d)");
  bench::rule(96);
  for (const testbed::PhaseReport& phase : report.phases) {
    std::printf("%-8s %9llu %9llu %7llu %7llu %9.1f %9.1f %9.1f %10.1f %11.1f\n",
                phase.name.c_str(), static_cast<unsigned long long>(phase.beats_ok),
                static_cast<unsigned long long>(phase.beats_failed),
                static_cast<unsigned long long>(phase.full_beats),
                static_cast<unsigned long long>(phase.delta_beats), phase.latency.p50_ms,
                phase.latency.p95_ms, phase.latency.p99_ms, phase.beats_per_s,
                phase.mean_delta_request_bytes);
    json.row({{"row", "phase"},
              {"phase", phase.name},
              {"duration_s", phase.duration_s},
              {"beats_ok", static_cast<double>(phase.beats_ok)},
              {"beats_failed", static_cast<double>(phase.beats_failed)},
              {"full_beats", static_cast<double>(phase.full_beats)},
              {"delta_beats", static_cast<double>(phase.delta_beats)},
              {"sync_p50_ms", phase.latency.p50_ms},
              {"sync_p95_ms", phase.latency.p95_ms},
              {"sync_p99_ms", phase.latency.p99_ms},
              {"sync_max_ms", phase.latency.max_ms},
              {"beats_per_s", phase.beats_per_s},
              {"mean_request_bytes", phase.mean_request_bytes},
              {"mean_delta_request_bytes", phase.mean_delta_request_bytes},
              {"downloads", static_cast<double>(phase.downloads)},
              {"drops", static_cast<double>(phase.drops)}});
  }
  std::printf("\njoin: %s in %.1fs   recovery: %s in %.1fs   restored replicas: %llu\n",
              report.join_complete ? "complete" : "INCOMPLETE", report.join_complete_s,
              report.recovered ? "complete" : "INCOMPLETE", report.recovery_lag_s,
              static_cast<unsigned long long>(report.restored_replicas));
  std::printf("scheduler: %llu full syncs, %llu delta syncs, %llu resyncs\n",
              static_cast<unsigned long long>(report.scheduler_full_syncs),
              static_cast<unsigned long long>(report.scheduler_delta_syncs),
              static_cast<unsigned long long>(report.scheduler_resyncs));
  json.row({{"row", "summary"},
            {"nodes", report.nodes},
            {"real_workers", report.real_workers},
            {"datums", report.datums},
            {"join_complete", report.join_complete ? 1 : 0},
            {"join_complete_s", report.join_complete_s},
            {"recovered", report.recovered ? 1 : 0},
            {"recovery_lag_s", report.recovery_lag_s},
            {"restored_replicas", static_cast<double>(report.restored_replicas)},
            {"scheduler_full_syncs", static_cast<double>(report.scheduler_full_syncs)},
            {"scheduler_delta_syncs", static_cast<double>(report.scheduler_delta_syncs)},
            {"scheduler_resyncs", static_cast<double>(report.scheduler_resyncs)}});
  json.flush();

  // --- CI gates ---------------------------------------------------------------
  int failures = 0;
  if (!report.join_complete) {
    std::fprintf(stderr, "GATE: join did not complete within %.0fs\n", config.join_timeout_s);
    ++failures;
  }
  if (!report.recovered) {
    std::fprintf(stderr, "GATE: fleet did not recover within %.0fs of the rejoin\n",
                 config.recovery_timeout_s);
    ++failures;
  }
  const testbed::PhaseReport* steady = report.phase("steady");
  const double gate_p99_ms = double_flag(argc, argv, "--gate-p99-ms", 0);
  if (gate_p99_ms > 0 && steady != nullptr && steady->latency.p99_ms > gate_p99_ms) {
    std::fprintf(stderr, "GATE: steady-state sync p99 %.1fms exceeds budget %.1fms\n",
                 steady->latency.p99_ms, gate_p99_ms);
    ++failures;
  }
  const double gate_delta_bytes = double_flag(argc, argv, "--gate-delta-bytes", 0);
  if (gate_delta_bytes > 0 && steady != nullptr &&
      steady->mean_delta_request_bytes > gate_delta_bytes) {
    std::fprintf(stderr,
                 "GATE: steady-state delta request averages %.1f bytes, budget %.1f "
                 "(sync traffic is not O(delta))\n",
                 steady->mean_delta_request_bytes, gate_delta_bytes);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bitdew

int main(int argc, char** argv) {
  if (!bitdew::bench::has_flag(argc, argv, "--real")) {
    std::printf("soak_churn is a live-fleet bench: run with --real.\n"
                "The simulated churn equivalents run in ctest as test_soak.\n");
    return 0;
  }
  return bitdew::run_real(argc, argv);
}
