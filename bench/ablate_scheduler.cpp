// Ablation: the Data Scheduler's two tuning knobs (DESIGN.md §4.4).
//  (1) MaxDataSchedule — Algorithm 1's per-sync download cap: how fast does
//      a batch of data spread over a cluster as the cap varies?
//  (2) heartbeat period — the failure detector waits 3x the heartbeat, so
//      recovery latency after a crash should track ~3x period + download.
#include "bench_common.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

double spread_time(int max_schedule, int items, int nodes) {
  sim::Simulator sim(43);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", nodes + 1});
  runtime::SimRuntimeConfig config;
  config.scheduler.max_data_schedule = max_schedule;
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0], config);

  runtime::SimNode& master = runtime.add_node(cluster.hosts[0], false);
  for (int i = 1; i <= nodes; ++i) {
    runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)]);
  }
  const double start = sim.now();
  std::vector<core::Data> all;
  for (int i = 0; i < items; ++i) {
    const core::Content content = core::synthetic_content(static_cast<std::uint64_t>(i),
                                                          2 * util::kMB);
    const core::Data data =
        master.bitdew().create_data("item" + std::to_string(i), content);
    master.bitdew().put(data, content);
    core::DataAttributes attributes;
    attributes.replica = 1;
    master.active_data().schedule(data, attributes);
    all.push_back(data);
  }
  // Run until every item is owned somewhere.
  double done_at = -1;
  while (sim.now() < 2000) {
    sim.run_until(sim.now() + 1.0);
    std::size_t owned = 0;
    for (const core::Data& data : all) {
      if (!runtime.container().ds().owners(data.uid).empty()) ++owned;
    }
    if (owned == all.size()) {
      done_at = sim.now() - start;
      break;
    }
  }
  return done_at;
}

double recovery_latency(double heartbeat) {
  sim::Simulator sim(47);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", 6});
  runtime::SimRuntimeConfig config;
  config.scheduler.heartbeat_period_s = heartbeat;
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0], config);

  runtime::SimNode& master = runtime.add_node(cluster.hosts[0], false);
  std::vector<runtime::SimNode*> nodes;
  for (int i = 1; i <= 5; ++i) {
    nodes.push_back(&runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)]));
  }
  const core::Content content = core::synthetic_content(5, util::kMB);
  const core::Data data = master.bitdew().create_data("hot", content);
  master.bitdew().put(data, content);
  core::DataAttributes attributes;
  attributes.replica = 1;
  attributes.fault_tolerant = true;
  master.active_data().schedule(data, attributes);
  sim.run_until(20 * heartbeat + 20);

  runtime::SimNode* owner = nullptr;
  for (auto* node : nodes) {
    if (node->has(data.uid)) owner = node;
  }
  if (owner == nullptr) return -1;
  const double killed_at = sim.now();
  runtime.kill_node(owner->host());
  while (sim.now() < killed_at + 100 * heartbeat + 100) {
    sim.run_until(sim.now() + heartbeat);
    for (auto* node : nodes) {
      if (node != owner && node->has(data.uid)) return sim.now() - killed_at;
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  (void)argc;
  (void)argv;

  header("Ablation — scheduler knobs: MaxDataSchedule and heartbeat period",
         "DESIGN.md design-choice ablations for Algorithm 1");

  std::printf("(1) time to place 128 data items on 4 nodes vs MaxDataSchedule\n");
  std::printf("%-18s | %12s\n", "MaxDataSchedule", "spread(s)");
  rule(36);
  for (const int cap : {1, 2, 4, 8, 32}) {
    std::printf("%-18d | %12.1f\n", cap, spread_time(cap, 128, 4));
  }

  std::printf("\n(2) crash-to-recovery latency vs heartbeat period (detector = 3x)\n");
  std::printf("%-18s | %12s | %s\n", "heartbeat(s)", "recovery(s)", "expected ~3x+download");
  rule(56);
  for (const double heartbeat : {0.5, 1.0, 2.0, 5.0}) {
    std::printf("%-18.1f | %12.2f | %.1f\n", heartbeat, recovery_latency(heartbeat),
                3 * heartbeat);
  }
  return 0;
}
