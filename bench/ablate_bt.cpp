// Ablation: BitTorrent swarm parameters (DESIGN.md design choices) — piece
// size, unchoke (upload-slot) count and the per-connection throughput cap —
// plus a cross-check of the two bandwidth-sharing models on the same swarm.
#include "bench_common.hpp"
#include "testbed/topologies.hpp"
#include "transfer/bittorrent.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

double swarm_time(transfer::BtConfig config, int peers, std::int64_t bytes,
                  net::SharingModel model) {
  sim::Simulator sim(53);
  net::Network net(sim);
  net.set_sharing_model(model);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", peers + 1});
  transfer::BtProtocol bt(sim, net, config);

  core::Data data;
  data.uid = util::next_auid();
  data.name = "payload";
  data.size = bytes;
  data.checksum = core::synthetic_content(1, bytes).checksum;

  int done = 0;
  double last = 0;
  for (int i = 1; i <= peers; ++i) {
    transfer::TransferJob job;
    job.data = data;
    job.source = cluster.hosts[0];
    job.destination = cluster.hosts[static_cast<std::size_t>(i)];
    bt.start(job, [&](const transfer::TransferOutcome& outcome) {
      if (outcome.ok) {
        ++done;
        last = outcome.finished_at;
      }
    });
  }
  sim.run();
  return done == peers ? last : -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const int peers = full ? 100 : 40;
  const std::int64_t bytes = 100 * util::kMB;

  header("Ablation — BitTorrent swarm parameters", "DESIGN.md: piece size, unchoke slots, "
         "per-connection cap, sharing model");
  std::printf("swarm: %d peers, %s payload\n\n", peers, util::human_bytes(bytes).c_str());

  transfer::BtConfig base;

  std::printf("(1) piece size\n%-14s | %10s\n", "piece", "time(s)");
  rule(30);
  for (const std::int64_t piece_kb : {256, 1000, 4000}) {
    transfer::BtConfig config = base;
    config.piece_bytes = piece_kb * util::kKB;
    std::printf("%-14s | %10.1f\n", util::human_bytes(config.piece_bytes).c_str(),
                swarm_time(config, peers, bytes, net::SharingModel::kCounting));
  }

  std::printf("\n(2) upload slots (unchoke set size)\n%-14s | %10s\n", "slots", "time(s)");
  rule(30);
  for (const int slots : {2, 4, 8}) {
    transfer::BtConfig config = base;
    config.upload_slots = slots;
    std::printf("%-14d | %10.1f\n", slots,
                swarm_time(config, peers, bytes, net::SharingModel::kCounting));
  }

  std::printf("\n(3) per-connection throughput cap\n%-14s | %10s\n", "cap", "time(s)");
  rule(30);
  for (const double cap : {1.5e6, 3e6, 12e6, 0.0}) {
    transfer::BtConfig config = base;
    config.per_connection_Bps = cap;
    std::printf("%-14s | %10.1f\n", cap > 0 ? util::human_rate(cap).c_str() : "uncapped",
                swarm_time(config, peers, bytes, net::SharingModel::kCounting));
  }

  std::printf("\n(4) sharing model cross-check (16 peers)\n%-14s | %10s\n", "model",
              "time(s)");
  rule(30);
  std::printf("%-14s | %10.1f\n", "counting",
              swarm_time(base, 16, bytes, net::SharingModel::kCounting));
  std::printf("%-14s | %10.1f\n", "max-min",
              swarm_time(base, 16, bytes, net::SharingModel::kMaxMin));
  return 0;
}
