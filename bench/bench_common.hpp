// Shared helpers for the benchmark harness: flag parsing, table output and
// the machine-readable JSON emitter. Every binary runs a
// reduced-but-shape-preserving sweep by default and the full paper-scale
// sweep under --full; `--json PATH` additionally writes the sweep's rows as
// a BENCH_*.json document for the perf trajectory.
#pragma once

#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace bitdew::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Value of `--flag VALUE`; nullptr when absent. A missing value (end of
/// argv or another --flag following) is reported, not swallowed.
inline const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      return nullptr;
    }
    return argv[i + 1];
  }
  return nullptr;
}

inline int int_flag(int argc, char** argv, const char* flag, int fallback) {
  const char* value = flag_value(argc, argv, flag);
  return value != nullptr ? std::atoi(value) : fallback;
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

inline void rule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Accumulates benchmark rows and writes them as one JSON document:
///   {"bench": "<name>", "rows": [{"k": v, ...}, ...]}
/// Constructed from argv: inert (all calls no-ops) unless --json PATH was
/// given, so benches emit unconditionally.
class JsonEmitter {
 public:
  /// A cell is a name plus either a numeric or a string value.
  struct Cell {
    Cell(const char* key, double value) : key(key), number(value), is_number(true) {}
    Cell(const char* key, int value) : key(key), number(value), is_number(true) {}
    Cell(const char* key, const char* value) : key(key), text(value) {}
    Cell(const char* key, const std::string& value) : key(key), text(value) {}

    std::string key;
    double number = 0;
    std::string text;
    bool is_number = false;
  };

  JsonEmitter(const char* bench_name, int argc, char** argv)
      : bench_(bench_name), path_(flag_value(argc, argv, "--json") != nullptr
                                      ? flag_value(argc, argv, "--json")
                                      : "") {}

  ~JsonEmitter() { flush(); }

  bool enabled() const { return !path_.empty(); }

  void row(std::initializer_list<Cell> cells) {
    if (!enabled()) return;
    std::string out = "{";
    bool first = true;
    for (const Cell& cell : cells) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + escape(cell.key) + "\": ";
      if (cell.is_number) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.6g", cell.number);
        out += buffer;
      } else {
        out += "\"" + escape(cell.text) + "\"";
      }
    }
    out += "}";
    rows_.push_back(std::move(out));
  }

  void flush() {
    if (!enabled() || flushed_) return;
    flushed_ = true;
    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "json emitter: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(file, "{\"bench\": \"%s\", \"rows\": [", escape(bench_).c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(file, "%s%s", i == 0 ? "" : ", ", rows_[i].c_str());
    }
    std::fprintf(file, "]}\n");
    std::fclose(file);
    std::printf("\nwrote %zu rows to %s\n", rows_.size(), path_.c_str());
  }

 private:
  static std::string escape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<std::string> rows_;
  bool flushed_ = false;
};

}  // namespace bitdew::bench
