// Shared helpers for the benchmark harness: flag parsing and table output.
// Every binary runs a reduced-but-shape-preserving sweep by default and the
// full paper-scale sweep under --full.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace bitdew::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

inline void rule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bitdew::bench
