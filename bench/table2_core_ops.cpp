// Table 2: data-slot creations per second (thousands), across
//   {local, rmi local, rmi remote} x {server-engine (MySQL role),
//    embedded-engine (HsqlDB role)} x {without, with connection pool}.
//
// This bench measures REAL wall-clock throughput of real code: the binary
// codec, the DewDB engines (the server engine crosses an AF_UNIX socketpair
// to a separate thread with an authentication handshake per connection) and
// the call paths:
//   local      — direct function call into the Data Catalog op;
//   rmi local  — request/response serialized through a worker thread
//                (in-process RPC, the paper's same-machine RMI);
//   rmi remote — same, plus a calibrated wire latency per round-trip
//                (--wire-latency-us, default 150) standing in for the
//                cluster network we do not have. This injection is the only
//                non-measured component and is reported in the output.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "bench_common.hpp"
#include "db/database.hpp"
#include "db/embedded_engine.hpp"
#include "db/pool.hpp"
#include "db/server_engine.hpp"
#include "util/auid.hpp"

namespace {

using namespace bitdew;

db::Command make_insert() {
  db::Command command;
  command.op = db::Op::kInsert;
  command.table = "dc_data";
  command.row["uid"] = util::next_auid().str();
  command.row["name"] = std::string("slot");
  command.row["size"] = std::int64_t{1024};
  command.row["checksum"] = std::string("00112233445566778899aabbccddeeff");
  return command;
}

/// In-process RPC worker: requests are codec-serialized, executed on a
/// dedicated thread, responses serialized back (the "RMI" hop).
class RpcWorker {
 public:
  explicit RpcWorker(std::function<std::string(const std::string&)> handler)
      : handler_(std::move(handler)), thread_([this] { loop(); }) {}

  ~RpcWorker() {
    {
      const std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    request_ready_.notify_all();
    thread_.join();
  }

  std::string call(const std::string& request) {
    std::unique_lock lock(mutex_);
    request_ = request;
    has_request_ = true;
    request_ready_.notify_one();
    response_ready_.wait(lock, [this] { return has_response_; });
    has_response_ = false;
    return std::move(response_);
  }

 private:
  void loop() {
    std::unique_lock lock(mutex_);
    while (true) {
      request_ready_.wait(lock, [this] { return has_request_ || stopping_; });
      if (stopping_) return;
      has_request_ = false;
      const std::string request = std::move(request_);
      lock.unlock();
      std::string response = handler_(request);
      lock.lock();
      response_ = std::move(response);
      has_response_ = true;
      response_ready_.notify_one();
    }
  }

  std::function<std::string(const std::string&)> handler_;
  std::mutex mutex_;
  std::condition_variable request_ready_;
  std::condition_variable response_ready_;
  std::string request_;
  std::string response_;
  bool has_request_ = false;
  bool has_response_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

void spin_for_us(int micros) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < until) {
  }
}

struct Scenario {
  const char* call_path;  // local / rmi local / rmi remote
  const char* engine;     // server (MySQL role) / embedded (HsqlDB role)
  bool pooled;
};

double run_scenario(const Scenario& scenario, double seconds, int wire_latency_us) {
  db::Database database;
  database.create_table(db::TableSchema{"dc_data", "uid", {"name"}});

  std::unique_ptr<db::Engine> engine;
  if (std::string(scenario.engine) == "server") {
    engine = std::make_unique<db::ServerEngine>(database);
  } else {
    engine = std::make_unique<db::EmbeddedEngine>(database);
  }
  db::ConnectionPool pool(*engine, 4);

  // The Data Catalog op: one slot creation through the chosen engine.
  auto execute = [&](const db::Command& command) {
    if (scenario.pooled) {
      auto lease = pool.acquire();
      return lease->execute(command);
    }
    const auto connection = engine->connect();  // fresh connection per op
    return connection->execute(command);
  };

  // The RPC hop serializes command/response through the codec.
  auto service = [&execute](const std::string& request) {
    rpc::Reader reader(request);
    const db::Command command = db::decode_command(reader);
    const db::Response response = execute(command);
    rpc::Writer writer;
    db::encode_response(writer, response);
    return writer.take();
  };
  RpcWorker worker(service);

  const std::string path(scenario.call_path);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  std::uint64_t ops = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const db::Command command = make_insert();
    if (path == "local") {
      const db::Response response = execute(command);
      if (!response.ok) std::abort();
    } else {
      rpc::Writer writer;
      db::encode_command(writer, command);
      if (path == "rmi remote") spin_for_us(wire_latency_us);  // request wire
      const std::string reply = worker.call(writer.buffer());
      if (path == "rmi remote") spin_for_us(wire_latency_us);  // response wire
      rpc::Reader reader(reply);
      if (!db::decode_response(reader).ok) std::abort();
    }
    ++ops;
  }
  return static_cast<double>(ops) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const double seconds = full ? 2.0 : 0.25;
  const int wire_latency_us = 150;

  header("Table 2 — data slot creation throughput (thousands of dc/sec)",
         "paper Table 2: local/RMI x MySQL/HsqlDB x DBCP");
  std::printf("measurement window: %.2fs per cell; injected wire latency for"
              " 'rmi remote': %dus each way\n\n",
              seconds, wire_latency_us);

  std::printf("%-12s | %-22s | %-22s\n", "", "without pool", "with pool");
  std::printf("%-12s | %-10s %-10s | %-10s %-10s\n", "call path", "server", "embedded",
              "server", "embedded");
  rule();
  for (const char* path : {"local", "rmi local", "rmi remote"}) {
    double cells[4] = {0, 0, 0, 0};
    int i = 0;
    for (const bool pooled : {false, true}) {
      for (const char* engine : {"server", "embedded"}) {
        cells[i++] = run_scenario(Scenario{path, engine, pooled}, seconds, wire_latency_us);
      }
    }
    std::printf("%-12s | %-10.2f %-10.2f | %-10.2f %-10.2f\n", path, cells[0] / 1000.0,
                cells[1] / 1000.0, cells[2] / 1000.0, cells[3] / 1000.0);
  }
  std::printf(
      "\nexpected shape (paper): embedded > server; pooled > unpooled;\n"
      "local > rmi local > rmi remote. Absolute numbers differ (C++ vs Java).\n");
  return 0;
}
