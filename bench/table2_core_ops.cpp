// Table 2: data-slot creations per second (thousands), across
//   {local, rmi local, rmi remote} x {server-engine (MySQL role),
//    embedded-engine (HsqlDB role)} x {without, with connection pool}.
//
// This bench measures REAL wall-clock throughput of real code: the binary
// codec, the DewDB engines (the server engine crosses an AF_UNIX socketpair
// to a separate thread with an authentication handshake per connection) and
// the call paths:
//   local      — direct function call into the Data Catalog op;
//   rmi local  — request/response serialized through a worker thread
//                (in-process RPC, the paper's same-machine RMI);
//   rmi remote — same, plus a calibrated wire latency per round-trip
//                (--wire-latency-us, default 150) standing in for the
//                cluster network we do not have. This injection is the only
//                non-measured component and is reported in the output.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "bench_common.hpp"
#include "db/database.hpp"
#include "db/embedded_engine.hpp"
#include "db/pool.hpp"
#include "db/server_engine.hpp"
#include "runtime/sim_service_bus.hpp"
#include "testbed/topologies.hpp"
#include "util/auid.hpp"

namespace {

using namespace bitdew;

db::Command make_insert() {
  db::Command command;
  command.op = db::Op::kInsert;
  command.table = "dc_data";
  command.row["uid"] = util::next_auid().str();
  command.row["name"] = std::string("slot");
  command.row["size"] = std::int64_t{1024};
  command.row["checksum"] = std::string("00112233445566778899aabbccddeeff");
  return command;
}

/// In-process RPC worker: requests are codec-serialized, executed on a
/// dedicated thread, responses serialized back (the "RMI" hop).
class RpcWorker {
 public:
  explicit RpcWorker(std::function<std::string(const std::string&)> handler)
      : handler_(std::move(handler)), thread_([this] { loop(); }) {}

  ~RpcWorker() {
    {
      const std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    request_ready_.notify_all();
    thread_.join();
  }

  std::string call(const std::string& request) {
    std::unique_lock lock(mutex_);
    request_ = request;
    has_request_ = true;
    request_ready_.notify_one();
    response_ready_.wait(lock, [this] { return has_response_; });
    has_response_ = false;
    return std::move(response_);
  }

 private:
  void loop() {
    std::unique_lock lock(mutex_);
    while (true) {
      request_ready_.wait(lock, [this] { return has_request_ || stopping_; });
      if (stopping_) return;
      has_request_ = false;
      const std::string request = std::move(request_);
      lock.unlock();
      std::string response = handler_(request);
      lock.lock();
      response_ = std::move(response);
      has_response_ = true;
      response_ready_.notify_one();
    }
  }

  std::function<std::string(const std::string&)> handler_;
  std::mutex mutex_;
  std::condition_variable request_ready_;
  std::condition_variable response_ready_;
  std::string request_;
  std::string response_;
  bool has_request_ = false;
  bool has_response_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

void spin_for_us(int micros) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < until) {
  }
}

struct Scenario {
  const char* call_path;  // local / rmi local / rmi remote
  const char* engine;     // server (MySQL role) / embedded (HsqlDB role)
  bool pooled;
};

double run_scenario(const Scenario& scenario, double seconds, int wire_latency_us) {
  db::Database database;
  database.create_table(db::TableSchema{"dc_data", "uid", {"name"}});

  std::unique_ptr<db::Engine> engine;
  if (std::string(scenario.engine) == "server") {
    engine = std::make_unique<db::ServerEngine>(database);
  } else {
    engine = std::make_unique<db::EmbeddedEngine>(database);
  }
  db::ConnectionPool pool(*engine, 4);

  // The Data Catalog op: one slot creation through the chosen engine.
  auto execute = [&](const db::Command& command) {
    if (scenario.pooled) {
      auto lease = pool.acquire();
      return lease->execute(command);
    }
    const auto connection = engine->connect();  // fresh connection per op
    return connection->execute(command);
  };

  // The RPC hop serializes command/response through the codec.
  auto service = [&execute](const std::string& request) {
    rpc::Reader reader(request);
    const db::Command command = db::decode_command(reader);
    const db::Response response = execute(command);
    rpc::Writer writer;
    db::encode_response(writer, response);
    return writer.take();
  };
  RpcWorker worker(service);

  const std::string path(scenario.call_path);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  std::uint64_t ops = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const db::Command command = make_insert();
    if (path == "local") {
      const db::Response response = execute(command);
      if (!response.ok) std::abort();
    } else {
      rpc::Writer writer;
      db::encode_command(writer, command);
      if (path == "rmi remote") spin_for_us(wire_latency_us);  // request wire
      const std::string reply = worker.call(writer.buffer());
      if (path == "rmi remote") spin_for_us(wire_latency_us);  // response wire
      rpc::Reader reader(reply);
      if (!db::decode_response(reader).ok) std::abort();
    }
    ++ops;
  }
  return static_cast<double>(ops) / seconds;
}

// --- ServiceBus v2: batched slot creation over the simulated bus -------------
// The scalar path pays one request flow, one FIFO service slot and one
// response flow per datum; dc_register_batch amortizes that envelope over N
// items (per-item service time preserved). Reported per registered datum:
// RPCs, service-queue events and total simulator events.

struct BusOutcome {
  std::uint64_t rpcs = 0;
  std::uint64_t service_events = 0;
  std::uint64_t sim_events = 0;
  double virtual_s = 0;
  std::size_t registered = 0;
};

BusOutcome run_bus_registration(int count, int batch) {
  sim::Simulator sim(7);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", 2});
  services::ServiceContainer container(net.host_name(cluster.hosts[0]), sim);
  runtime::ServiceQueue queue(sim, 500e-6);
  dht::LocalDht ddc;
  runtime::SimServiceBus bus(sim, net, cluster.hosts[1], cluster.hosts[0], container, queue,
                             ddc, runtime::BusConfig{});

  std::vector<core::Data> items;
  items.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::Data data;
    data.uid = util::next_auid();
    data.name = "slot";
    data.size = 1024;
    data.checksum = "00112233445566778899aabbccddeeff";
    items.push_back(std::move(data));
  }

  BusOutcome outcome;
  if (batch <= 1) {
    for (const core::Data& data : items) {
      bus.dc_register(data, [&outcome](api::Status status) {
        if (status.ok()) ++outcome.registered;
      });
    }
  } else {
    for (std::size_t start = 0; start < items.size();
         start += static_cast<std::size_t>(batch)) {
      const std::size_t end =
          std::min(items.size(), start + static_cast<std::size_t>(batch));
      const std::vector<core::Data> chunk(items.begin() + static_cast<std::ptrdiff_t>(start),
                                          items.begin() + static_cast<std::ptrdiff_t>(end));
      bus.dc_register_batch(chunk, [&outcome](api::BatchStatus statuses) {
        for (const api::Status& status : statuses) {
          if (status.ok()) ++outcome.registered;
        }
      });
    }
  }
  sim.run();
  outcome.rpcs = bus.rpc_count();
  outcome.service_events = queue.served();
  outcome.sim_events = sim.executed();
  outcome.virtual_s = sim.now();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const double seconds = full ? 2.0 : 0.25;
  const int wire_latency_us = 150;
  const int batch = int_flag(argc, argv, "--batch", 64);
  JsonEmitter json("table2_core_ops", argc, argv);

  header("Table 2 — data slot creation throughput (thousands of dc/sec)",
         "paper Table 2: local/RMI x MySQL/HsqlDB x DBCP");
  std::printf("measurement window: %.2fs per cell; injected wire latency for"
              " 'rmi remote': %dus each way\n\n",
              seconds, wire_latency_us);

  std::printf("%-12s | %-22s | %-22s\n", "", "without pool", "with pool");
  std::printf("%-12s | %-10s %-10s | %-10s %-10s\n", "call path", "server", "embedded",
              "server", "embedded");
  rule();
  for (const char* path : {"local", "rmi local", "rmi remote"}) {
    double cells[4] = {0, 0, 0, 0};
    int i = 0;
    for (const bool pooled : {false, true}) {
      for (const char* engine : {"server", "embedded"}) {
        cells[i++] = run_scenario(Scenario{path, engine, pooled}, seconds, wire_latency_us);
      }
    }
    std::printf("%-12s | %-10.2f %-10.2f | %-10.2f %-10.2f\n", path, cells[0] / 1000.0,
                cells[1] / 1000.0, cells[2] / 1000.0, cells[3] / 1000.0);
    json.row({{"section", "engine"},
              {"call_path", path},
              {"server_dc_per_s", cells[0]},
              {"embedded_dc_per_s", cells[1]},
              {"server_pooled_dc_per_s", cells[2]},
              {"embedded_pooled_dc_per_s", cells[3]}});
  }
  std::printf(
      "\nexpected shape (paper): embedded > server; pooled > unpooled;\n"
      "local > rmi local > rmi remote. Absolute numbers differ (C++ vs Java).\n");

  // --- ServiceBus v2: batch amortization over the simulated bus --------------
  const int registrations = full ? 2048 : 256;
  std::printf("\nbatched registration over the simulated ServiceBus"
              " (%d data, --batch %d)\n", registrations, batch);
  std::printf("%-10s | %10s | %14s | %12s | %10s\n", "batch", "rpcs/datum",
              "svc events/dat", "sim evts/dat", "virtual s");
  rule();
  double scalar_service_events = 0;
  double batched_service_events = 0;
  std::vector<int> sizes{1, 8};
  if (batch > 1 && batch != 8) sizes.push_back(batch);
  for (const int size : sizes) {
    const BusOutcome outcome = run_bus_registration(registrations, size);
    const double n = static_cast<double>(outcome.registered ? outcome.registered : 1);
    const double service_per_datum = static_cast<double>(outcome.service_events) / n;
    std::printf("%-10d | %10.3f | %14.4f | %12.2f | %10.4f\n", size,
                static_cast<double>(outcome.rpcs) / n, service_per_datum,
                static_cast<double>(outcome.sim_events) / n, outcome.virtual_s);
    json.row({{"section", "batch"},
              {"batch", size},
              {"registered", static_cast<double>(outcome.registered)},
              {"rpcs_per_datum", static_cast<double>(outcome.rpcs) / n},
              {"service_events_per_datum", service_per_datum},
              {"sim_events_per_datum", static_cast<double>(outcome.sim_events) / n},
              {"virtual_s", outcome.virtual_s}});
    if (size == 1) scalar_service_events = service_per_datum;
    if (size == batch) batched_service_events = service_per_datum;
  }
  if (batch > 1 && batched_service_events > 0) {
    std::printf("\nservice events per datum, scalar vs batch=%d: %.1fx fewer\n", batch,
                scalar_service_events / batched_service_events);
  }
  return 0;
}
