// Table 3: publishing (dataID, hostID) pairs into the Distributed Data
// Catalog (the DKS-style DHT ring) vs the centralized Data Catalog.
// 50 nodes x 500 pairs each (the paper's SPMD benchmark); each node issues
// its next publish when the previous one is acknowledged. Reported: the
// min/max/sd/mean per-node publish rate and the total wall (virtual) time
// for all 25 000 pairs — the paper measured 108.75 s for the DDC and found
// it ~15x slower than the DC.
// With --real the same comparison runs over live sockets instead of the
// simulator: one centralized bitdewd-style host vs a live DHT ring of
// 1/2/4/8 in-process members (rpc::ServiceHost::start_ring, f=2), with
// concurrent publisher threads spread across the membership. Reported:
// publish and search throughput per ring size, the single-member ring's
// overhead over the centralized catalog, and the scaling trend.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <thread>

#include "api/remote_service_bus.hpp"
#include "bench_common.hpp"
#include "dht/local_dht.hpp"
#include "rpc/server.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"

namespace {

using namespace bitdew;

struct Outcome {
  util::RunningStats per_node_time;  // the paper's Table 3 rows are seconds
  util::RunningStats per_node_rate;
  double total_time = 0;
  std::uint64_t rpcs = 0;
};

Outcome run(bool use_ddc, int nodes, int pairs_per_node, int batch = 1) {
  sim::Simulator sim(17);
  net::Network net(sim);
  const auto cluster =
      testbed::make_cluster(net, testbed::ClusterSpec{"gdx", nodes + 1});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0]);

  std::vector<runtime::SimNode*> publishers;
  for (int i = 1; i <= nodes; ++i) {
    publishers.push_back(
        &runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)], /*reservoir=*/false));
  }
  if (use_ddc) {
    std::vector<net::HostId> ring_hosts;
    for (const auto* node : publishers) ring_hosts.push_back(node->host());
    dht::RingConfig ring_config;
    ring_config.arity = 4;       // DKS search arity
    ring_config.replication = 3;  // DKS f
    // Per-hop software overhead calibrated to the paper's DKS prototype,
    // whose measured publish cost was ~200 ms (108 s for 500 sequential
    // publishes): ~5 messages per publish x 40 ms.
    ring_config.processing_delay_s = 0.04;
    runtime.enable_ddc(ring_hosts, ring_config);
  }

  std::vector<double> done_at(static_cast<std::size_t>(nodes), 0);
  int completed_nodes = 0;

  // SPMD: every node starts at t=0 and publishes sequentially — one pair at
  // a time (the paper's protocol), or `batch` pairs per ddc_publish_batch
  // round-trip (ServiceBus v2).
  for (int n = 0; n < nodes; ++n) {
    auto* node = publishers[static_cast<std::size_t>(n)];
    auto publish_next = std::make_shared<std::function<void(int)>>();
    *publish_next = [&, node, n, batch, publish_next](int i) {
      if (i >= pairs_per_node) {
        done_at[static_cast<std::size_t>(n)] = sim.now();
        ++completed_nodes;
        return;
      }
      if (batch <= 1) {
        const std::string key = "data-" + std::to_string(n) + "-" + std::to_string(i);
        node->bitdew().publish(key, node->name(),
                               [publish_next, i](api::Status) { (*publish_next)(i + 1); });
        return;
      }
      const int end = std::min(pairs_per_node, i + batch);
      std::vector<api::KeyValue> pairs;
      pairs.reserve(static_cast<std::size_t>(end - i));
      for (int k = i; k < end; ++k) {
        pairs.push_back(api::KeyValue{
            "data-" + std::to_string(n) + "-" + std::to_string(k), node->name()});
      }
      node->bitdew().publish_batch(
          pairs, [publish_next, end](api::BatchStatus) { (*publish_next)(end); });
    };
    (*publish_next)(0);
  }

  sim.run_until(36000);
  Outcome outcome;
  outcome.rpcs = runtime.total_rpcs();
  for (int n = 0; n < nodes; ++n) {
    const double t = done_at[static_cast<std::size_t>(n)];
    if (t > 0) {
      outcome.per_node_time.add(t);
      outcome.per_node_rate.add(pairs_per_node / t);
      outcome.total_time = std::max(outcome.total_time, t);
    }
  }
  if (completed_nodes != nodes) outcome.total_time = -1;  // did not converge
  return outcome;
}

// --- --real: live hosts over real sockets ----------------------------------

constexpr double kRealStabilize = 0.05;

/// One in-process bitdewd-style member (in-memory container, loopback
/// ephemeral port). With `ring` false it is the centralized catalog.
struct LiveMember {
  LiveMember() : container("bench", clock) {
    rpc::ServiceHostConfig config;
    config.port = 0;
    config.loopback_only = true;
    config.idle_timeout_s = -1;
    config.failure_sweep_period_s = 0;
    host = std::make_unique<rpc::ServiceHost>(container, ddc, config);
  }

  api::Status start(bool ring, const std::string& join_endpoint) {
    const api::Status started = host->start();
    if (!started.ok()) return started;
    if (!ring) return api::ok_status();
    rpc::RingOptions options;
    options.join_endpoint = join_endpoint;
    options.replication_f = 2;
    options.stabilize_period_s = kRealStabilize;
    options.call_timeout_s = 1.0;
    return host->start_ring(options);
  }

  std::string endpoint() const { return "127.0.0.1:" + std::to_string(host->port()); }

  util::ManualClock clock;
  services::ServiceContainer container;
  dht::LocalDht ddc;
  std::unique_ptr<rpc::ServiceHost> host;
};

std::unique_ptr<api::RemoteServiceBus> connect_to(std::uint16_t port) {
  api::RemoteBusConfig config;
  config.connect_timeout_s = 2.0;
  config.call_deadline_s = 5.0;
  return std::make_unique<api::RemoteServiceBus>("127.0.0.1", port, config);
}

/// True when a successor-list walk from `port` sees exactly `n` members, all
/// with live predecessors.
bool ring_converged(std::uint16_t port, std::size_t n) {
  auto bus = connect_to(port);
  const auto home = bus->ring_info();
  if (!home.ok()) return false;
  std::set<std::string> seen{home->self.endpoint};
  std::vector<rpc::wire::RingNode> frontier = home->successors;
  if (!home->has_pred) return n == 1 && frontier.empty();
  while (!frontier.empty() && seen.size() <= n + 1) {
    const rpc::wire::RingNode next = frontier.back();
    frontier.pop_back();
    if (!seen.insert(next.endpoint).second) continue;
    const std::size_t colon = next.endpoint.rfind(':');
    auto peer =
        connect_to(static_cast<std::uint16_t>(std::stoi(next.endpoint.substr(colon + 1))));
    const auto info = peer->ring_info();
    if (!info.ok() || !info->has_pred) return false;
    for (const auto& node : info->successors) frontier.push_back(node);
  }
  return seen.size() == n;
}

bool wait_for(double deadline_s, const std::function<bool()>& predicate) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(deadline_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

struct RealOutcome {
  double publish_s = 0;
  double publish_rate = 0;
  double search_s = 0;
  double search_rate = 0;
  std::uint64_t redirects = 0;
  double max_key_share = 1;      // busiest member's share of all stored pairs
  double max_request_share = 1;  // busiest member's share of all served rpcs
  bool ok = false;
};

/// `members` live hosts (a ring when `ring`, else a single centralized DC),
/// `threads` publisher clients spread round-robin over the membership, each
/// publishing then searching its slice of `total_pairs` keys sequentially.
RealOutcome run_real(int members, bool ring, int total_pairs, int threads) {
  RealOutcome outcome;
  std::vector<std::unique_ptr<LiveMember>> ring_members;
  for (int m = 0; m < members; ++m) {
    auto member = std::make_unique<LiveMember>();
    const std::string join = m == 0 ? "" : ring_members[0]->endpoint();
    if (!member->start(ring, join).ok()) return outcome;
    ring_members.push_back(std::move(member));
  }
  if (ring &&
      !wait_for(10.0, [&] {
        return ring_converged(ring_members[0]->host->port(),
                              static_cast<std::size_t>(members));
      })) {
    return outcome;
  }

  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> redirects{0};
  const int per_thread = total_pairs / threads;
  auto phase = [&](bool searching) -> double {
    std::vector<std::thread> workers;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        auto bus =
            connect_to(ring_members[static_cast<std::size_t>(t % members)]->host->port());
        for (int i = 0; i < per_thread; ++i) {
          const std::string key =
              "bench-" + std::to_string(t) + "-" + std::to_string(i);
          if (searching) {
            std::optional<bool> hit;
            bus->ddc_search(key, [&](api::Expected<std::vector<std::string>> reply) {
              hit = reply.ok() && !reply->empty();
            });
            if (!hit.value_or(false)) failures.fetch_add(1);
          } else {
            std::optional<api::Status> done;
            bus->ddc_publish(key, "bench-host", [&](api::Status s) { done = s; });
            if (!done || !done->ok()) failures.fetch_add(1);
          }
        }
        redirects.fetch_add(bus->redirects_followed());
      });
    }
    for (auto& worker : workers) worker.join();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  const double pairs = static_cast<double>(per_thread) * threads;
  outcome.publish_s = phase(/*searching=*/false);
  outcome.publish_rate = pairs / outcome.publish_s;
  outcome.search_s = phase(/*searching=*/true);
  outcome.search_rate = pairs / outcome.search_s;
  outcome.redirects = redirects.load();
  outcome.ok = failures.load() == 0;

  // The sharding signal: how evenly the pair load and the request load spread
  // over the membership (ideal max share -> 1/members as the ring grows; the
  // centralized DC is pinned at 1).
  double total_keys = 0;
  double max_keys = 0;
  double total_requests = 0;
  double max_requests = 0;
  for (auto& member : ring_members) {
    double keys = 0;
    if (ring) {
      auto bus = connect_to(member->host->port());
      const auto info = bus->ring_info();
      if (info.ok()) keys = static_cast<double>(info->ddc_keys);
    } else {
      keys = static_cast<double>(member->ddc.key_count());
    }
    total_keys += keys;
    max_keys = std::max(max_keys, keys);
    const double requests = static_cast<double>(member->host->requests_served());
    total_requests += requests;
    max_requests = std::max(max_requests, requests);
  }
  if (total_keys > 0) outcome.max_key_share = max_keys / total_keys;
  if (total_requests > 0) outcome.max_request_share = max_requests / total_requests;

  for (auto& member : ring_members) {
    member->host->ring_leave();
    member->host->stop();
  }
  return outcome;
}

int run_real_suite(bool full, int base_threads, bitdew::bench::JsonEmitter& json) {
  using namespace bitdew::bench;
  const int total_pairs = full ? 4000 : 1000;
  header("Table 3 (--real) — live publish/search: centralized DC vs DHT ring",
         "in-process bitdewd members over real sockets, f=2");
  std::printf(
      "configuration: %d pairs per client thread, %d thread(s) per member\n"
      "(offered load scales with membership: aggregate capacity is the question)\n\n",
      total_pairs, base_threads);
  std::printf("%-16s | %10s | %10s | %9s | %9s | %9s | %3s\n", "catalog", "publish/s",
              "search/s", "redirects", "key share", "rpc share", "ok");
  rule();

  double centralized_rate = 0;
  double ring1_rate = 0;
  struct Config {
    const char* label;
    int members;
    bool ring;
  };
  const Config configs[] = {{"DC/centralized", 1, false},
                            {"ring/1", 1, true},
                            {"ring/2", 2, true},
                            {"ring/4", 4, true},
                            {"ring/8", 8, true}};
  for (const Config& config : configs) {
    const int threads = base_threads * config.members;
    const RealOutcome outcome =
        run_real(config.members, config.ring, total_pairs * threads, threads);
    std::printf("%-16s | %10.0f | %10.0f | %9llu | %9.3f | %9.3f | %3s\n", config.label,
                outcome.publish_rate, outcome.search_rate,
                static_cast<unsigned long long>(outcome.redirects), outcome.max_key_share,
                outcome.max_request_share, outcome.ok ? "yes" : "NO");
    if (!config.ring) centralized_rate = outcome.publish_rate;
    if (config.ring && config.members == 1) ring1_rate = outcome.publish_rate;
    json.row({{"section", "real"},
              {"catalog", config.ring ? "ring" : "dc"},
              {"members", config.members},
              {"pairs", total_pairs * threads},
              {"threads", threads},
              {"publish_s", outcome.publish_s},
              {"publish_pairs_per_s", outcome.publish_rate},
              {"search_s", outcome.search_s},
              {"search_pairs_per_s", outcome.search_rate},
              {"redirects", static_cast<double>(outcome.redirects)},
              {"max_key_share", outcome.max_key_share},
              {"max_request_share", outcome.max_request_share},
              {"ok", outcome.ok ? 1.0 : 0.0}});
  }
  if (centralized_rate > 0 && ring1_rate > 0) {
    std::printf("\nsingle-member ring overhead: %.2fx the centralized DC publish cost\n"
                "(hash routing + ownership checks + f=2 replication bookkeeping).\n",
                centralized_rate / ring1_rate);
  }
  std::printf(
      "key/rpc share = the busiest member's fraction of stored pairs / served\n"
      "requests: it falls toward 1/N as the ring grows, which is the scaling\n"
      "property — each member carries a shrinking slice of the metadata plane.\n"
      "All members share this host's CPU (%u core(s)), so aggregate pairs/s\n"
      "here prices the extra lookup/redirect/replication RPCs per publish, not\n"
      "the capacity N separate machines would add.\n",
      std::thread::hardware_concurrency());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  if (has_flag(argc, argv, "--real")) {
    JsonEmitter json("table3_publish_real", argc, argv);
    return run_real_suite(full, int_flag(argc, argv, "--threads", 2), json);
  }
  const int nodes = full ? 50 : 20;
  const int pairs = full ? 500 : 100;
  const int batch = int_flag(argc, argv, "--batch", 64);
  JsonEmitter json("table3_publish", argc, argv);

  header("Table 3 — publish rate: distributed vs centralized data catalog",
         "paper Table 3: 50 nodes x 500 (dataID,hostID) pairs");
  std::printf("configuration: %d nodes x %d pairs (DKS ring: k=4, f=3)\n\n", nodes, pairs);

  std::printf("per-node completion time in seconds (the paper's Table 3 rows)\n");
  std::printf("%-14s | %8s %8s %8s %8s | %14s\n", "catalog", "min", "max", "sd", "mean",
              "pairs/s (mean)");
  rule();
  double ddc_mean = 0;
  double dc_mean = 0;
  for (const bool use_ddc : {true, false}) {
    const Outcome outcome = run(use_ddc, nodes, pairs);
    std::printf("%-14s | %8.2f %8.2f %8.2f %8.2f | %14.2f\n",
                use_ddc ? "publish/DDC" : "publish/DC", outcome.per_node_time.min(),
                outcome.per_node_time.max(), outcome.per_node_time.stddev(),
                outcome.per_node_time.mean(), outcome.per_node_rate.mean());
    (use_ddc ? ddc_mean : dc_mean) = outcome.per_node_time.mean();
    json.row({{"section", "catalog"},
              {"catalog", use_ddc ? "ddc" : "dc"},
              {"min_s", outcome.per_node_time.min()},
              {"max_s", outcome.per_node_time.max()},
              {"mean_s", outcome.per_node_time.mean()},
              {"pairs_per_s", outcome.per_node_rate.mean()},
              {"rpcs", static_cast<double>(outcome.rpcs)}});
  }
  std::printf("\nDDC/DC ratio: %.1fx (paper: 108.75s vs 7.02s = ~15x; the DDC pays\n"
              "multi-hop routing, f-fold replication and DKS software overhead).\n",
              dc_mean > 0 ? ddc_mean / dc_mean : 0.0);

  // --- ServiceBus v2: ddc_publish_batch sweep (centralized catalog) ----------
  const double total_pairs = static_cast<double>(nodes) * pairs;
  std::printf("\nbatched publish into the DC (ddc_publish_batch, --batch %d)\n", batch);
  std::printf("%-10s | %10s | %12s | %14s\n", "batch", "mean s", "pairs/s", "rpcs/pair");
  rule();
  std::vector<int> sizes{1, 8};
  if (batch > 1 && batch != 8) sizes.push_back(batch);
  for (const int size : sizes) {
    const Outcome outcome = run(/*use_ddc=*/false, nodes, pairs, size);
    std::printf("%-10d | %10.2f | %12.2f | %14.4f\n", size, outcome.per_node_time.mean(),
                outcome.per_node_rate.mean(),
                static_cast<double>(outcome.rpcs) / total_pairs);
    json.row({{"section", "batch"},
              {"batch", size},
              {"mean_s", outcome.per_node_time.mean()},
              {"pairs_per_s", outcome.per_node_rate.mean()},
              {"rpcs_per_pair", static_cast<double>(outcome.rpcs) / total_pairs}});
  }
  return 0;
}
