// Table 3: publishing (dataID, hostID) pairs into the Distributed Data
// Catalog (the DKS-style DHT ring) vs the centralized Data Catalog.
// 50 nodes x 500 pairs each (the paper's SPMD benchmark); each node issues
// its next publish when the previous one is acknowledged. Reported: the
// min/max/sd/mean per-node publish rate and the total wall (virtual) time
// for all 25 000 pairs — the paper measured 108.75 s for the DDC and found
// it ~15x slower than the DC.
#include <algorithm>

#include "bench_common.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/stats.hpp"

namespace {

using namespace bitdew;

struct Outcome {
  util::RunningStats per_node_time;  // the paper's Table 3 rows are seconds
  util::RunningStats per_node_rate;
  double total_time = 0;
  std::uint64_t rpcs = 0;
};

Outcome run(bool use_ddc, int nodes, int pairs_per_node, int batch = 1) {
  sim::Simulator sim(17);
  net::Network net(sim);
  const auto cluster =
      testbed::make_cluster(net, testbed::ClusterSpec{"gdx", nodes + 1});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0]);

  std::vector<runtime::SimNode*> publishers;
  for (int i = 1; i <= nodes; ++i) {
    publishers.push_back(
        &runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)], /*reservoir=*/false));
  }
  if (use_ddc) {
    std::vector<net::HostId> ring_hosts;
    for (const auto* node : publishers) ring_hosts.push_back(node->host());
    dht::RingConfig ring_config;
    ring_config.arity = 4;       // DKS search arity
    ring_config.replication = 3;  // DKS f
    // Per-hop software overhead calibrated to the paper's DKS prototype,
    // whose measured publish cost was ~200 ms (108 s for 500 sequential
    // publishes): ~5 messages per publish x 40 ms.
    ring_config.processing_delay_s = 0.04;
    runtime.enable_ddc(ring_hosts, ring_config);
  }

  std::vector<double> done_at(static_cast<std::size_t>(nodes), 0);
  int completed_nodes = 0;

  // SPMD: every node starts at t=0 and publishes sequentially — one pair at
  // a time (the paper's protocol), or `batch` pairs per ddc_publish_batch
  // round-trip (ServiceBus v2).
  for (int n = 0; n < nodes; ++n) {
    auto* node = publishers[static_cast<std::size_t>(n)];
    auto publish_next = std::make_shared<std::function<void(int)>>();
    *publish_next = [&, node, n, batch, publish_next](int i) {
      if (i >= pairs_per_node) {
        done_at[static_cast<std::size_t>(n)] = sim.now();
        ++completed_nodes;
        return;
      }
      if (batch <= 1) {
        const std::string key = "data-" + std::to_string(n) + "-" + std::to_string(i);
        node->bitdew().publish(key, node->name(),
                               [publish_next, i](api::Status) { (*publish_next)(i + 1); });
        return;
      }
      const int end = std::min(pairs_per_node, i + batch);
      std::vector<api::KeyValue> pairs;
      pairs.reserve(static_cast<std::size_t>(end - i));
      for (int k = i; k < end; ++k) {
        pairs.push_back(api::KeyValue{
            "data-" + std::to_string(n) + "-" + std::to_string(k), node->name()});
      }
      node->bitdew().publish_batch(
          pairs, [publish_next, end](api::BatchStatus) { (*publish_next)(end); });
    };
    (*publish_next)(0);
  }

  sim.run_until(36000);
  Outcome outcome;
  outcome.rpcs = runtime.total_rpcs();
  for (int n = 0; n < nodes; ++n) {
    const double t = done_at[static_cast<std::size_t>(n)];
    if (t > 0) {
      outcome.per_node_time.add(t);
      outcome.per_node_rate.add(pairs_per_node / t);
      outcome.total_time = std::max(outcome.total_time, t);
    }
  }
  if (completed_nodes != nodes) outcome.total_time = -1;  // did not converge
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const int nodes = full ? 50 : 20;
  const int pairs = full ? 500 : 100;
  const int batch = int_flag(argc, argv, "--batch", 64);
  JsonEmitter json("table3_publish", argc, argv);

  header("Table 3 — publish rate: distributed vs centralized data catalog",
         "paper Table 3: 50 nodes x 500 (dataID,hostID) pairs");
  std::printf("configuration: %d nodes x %d pairs (DKS ring: k=4, f=3)\n\n", nodes, pairs);

  std::printf("per-node completion time in seconds (the paper's Table 3 rows)\n");
  std::printf("%-14s | %8s %8s %8s %8s | %14s\n", "catalog", "min", "max", "sd", "mean",
              "pairs/s (mean)");
  rule();
  double ddc_mean = 0;
  double dc_mean = 0;
  for (const bool use_ddc : {true, false}) {
    const Outcome outcome = run(use_ddc, nodes, pairs);
    std::printf("%-14s | %8.2f %8.2f %8.2f %8.2f | %14.2f\n",
                use_ddc ? "publish/DDC" : "publish/DC", outcome.per_node_time.min(),
                outcome.per_node_time.max(), outcome.per_node_time.stddev(),
                outcome.per_node_time.mean(), outcome.per_node_rate.mean());
    (use_ddc ? ddc_mean : dc_mean) = outcome.per_node_time.mean();
    json.row({{"section", "catalog"},
              {"catalog", use_ddc ? "ddc" : "dc"},
              {"min_s", outcome.per_node_time.min()},
              {"max_s", outcome.per_node_time.max()},
              {"mean_s", outcome.per_node_time.mean()},
              {"pairs_per_s", outcome.per_node_rate.mean()},
              {"rpcs", static_cast<double>(outcome.rpcs)}});
  }
  std::printf("\nDDC/DC ratio: %.1fx (paper: 108.75s vs 7.02s = ~15x; the DDC pays\n"
              "multi-hop routing, f-fold replication and DKS software overhead).\n",
              dc_mean > 0 ? ddc_mean / dc_mean : 0.0);

  // --- ServiceBus v2: ddc_publish_batch sweep (centralized catalog) ----------
  const double total_pairs = static_cast<double>(nodes) * pairs;
  std::printf("\nbatched publish into the DC (ddc_publish_batch, --batch %d)\n", batch);
  std::printf("%-10s | %10s | %12s | %14s\n", "batch", "mean s", "pairs/s", "rpcs/pair");
  rule();
  std::vector<int> sizes{1, 8};
  if (batch > 1 && batch != 8) sizes.push_back(batch);
  for (const int size : sizes) {
    const Outcome outcome = run(/*use_ddc=*/false, nodes, pairs, size);
    std::printf("%-10d | %10.2f | %12.2f | %14.4f\n", size, outcome.per_node_time.mean(),
                outcome.per_node_rate.mean(),
                static_cast<double>(outcome.rpcs) / total_pairs);
    json.row({{"section", "batch"},
              {"batch", size},
              {"mean_s", outcome.per_node_time.mean()},
              {"pairs_per_s", outcome.per_node_rate.mean()},
              {"rpcs_per_pair", static_cast<double>(outcome.rpcs) / total_pairs}});
  }
  return 0;
}
