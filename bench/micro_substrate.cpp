// google-benchmark micro-benchmarks of the substrates: MD5, the binary
// codec, RPC frame encode/decode (scalar vs batch envelopes), DewDB
// operations (indexed vs scanned finds), the max-min solver, DHT key
// hashing, and live pipelined RPC over a loopback epoll ServiceHost. These
// are the per-operation costs behind the macro-benches.
//
// `micro_substrate --pipeline-gate` runs the CI assertion instead of the
// benchmarks: frames/s over one real loopback connection at pipeline depth
// 8 must be >= 2x depth 1 on the same build. JSON on stdout, exit 1 on a
// miss.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string_view>

#include "api/remote_service_bus.hpp"
#include "db/database.hpp"
#include "dht/ring.hpp"
#include "net/network.hpp"
#include "rpc/codec.hpp"
#include "rpc/server.hpp"
#include "rpc/wire.hpp"
#include "sim/simulator.hpp"
#include "util/clock.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"

namespace {

using namespace bitdew;

void BM_Md5Digest64K(benchmark::State& state) {
  const std::string payload(64 * 1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Md5::of(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Md5Digest64K);

void BM_CodecRowRoundTrip(benchmark::State& state) {
  db::Row row;
  row["uid"] = std::string("00000000-0000-0000-0000-000000000001");
  row["name"] = std::string("genome");
  row["size"] = std::int64_t{123456};
  row["checksum"] = std::string("00112233445566778899aabbccddeeff");
  for (auto _ : state) {
    rpc::Writer writer;
    db::encode_row(writer, row);
    rpc::Reader reader(writer.buffer());
    benchmark::DoNotOptimize(db::decode_row(reader));
  }
}
BENCHMARK(BM_CodecRowRoundTrip);

core::Data frame_datum(int i) {
  core::Data data;
  data.uid = util::Auid{0xbead, static_cast<std::uint64_t>(i)};
  data.name = "datum-" + std::to_string(i);
  data.checksum = "00112233445566778899aabbccddeeff";
  data.size = 1 << 20;
  return data;
}

// One dc_register RPC frame (header + body) encoded and decoded per
// iteration — the per-call framing cost RemoteServiceBus/ServiceHost pay on
// the scalar path.
void BM_WireFrameScalarRegister(benchmark::State& state) {
  const core::Data data = frame_datum(1);
  std::int64_t frame_bytes = 0;
  for (auto _ : state) {
    rpc::Writer w;
    rpc::wire::write_frame_header(w, {rpc::wire::Endpoint::kDcRegister, 42});
    rpc::wire::write_data(w, data);
    frame_bytes = static_cast<std::int64_t>(w.size());
    rpc::Reader r(w.buffer());
    benchmark::DoNotOptimize(rpc::wire::read_frame_header(r));
    benchmark::DoNotOptimize(rpc::wire::read_data(r));
  }
  state.SetBytesProcessed(state.iterations() * frame_bytes);
  state.counters["bytes_per_item"] = static_cast<double>(frame_bytes);
}
BENCHMARK(BM_WireFrameScalarRegister);

// One dc_register_batch frame carrying N data per iteration: the envelope
// (frame header + list count) amortizes over the batch, so bytes_per_item
// approaches the raw payload size as N grows — the wire-level half of the
// bulk endpoints' claim, measured on real encoded bytes.
void BM_WireFrameBatchRegister(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  std::vector<core::Data> items;
  items.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) items.push_back(frame_datum(i));
  std::int64_t frame_bytes = 0;
  for (auto _ : state) {
    rpc::Writer w;
    rpc::wire::write_frame_header(w, {rpc::wire::Endpoint::kDcRegisterBatch, 42});
    rpc::wire::write_register_batch(w, items);
    frame_bytes = static_cast<std::int64_t>(w.size());
    rpc::Reader r(w.buffer());
    benchmark::DoNotOptimize(rpc::wire::read_frame_header(r));
    benchmark::DoNotOptimize(rpc::wire::read_register_batch(r));
  }
  state.SetBytesProcessed(state.iterations() * frame_bytes);
  state.counters["bytes_per_item"] = static_cast<double>(frame_bytes) / batch;
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_WireFrameBatchRegister)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_DewDbInsert(benchmark::State& state) {
  db::Database database;
  database.create_table(db::TableSchema{"t", "uid", {"name"}});
  std::uint64_t i = 0;
  for (auto _ : state) {
    db::Row row;
    row["uid"] = std::to_string(i++);
    row["name"] = std::string("n");
    benchmark::DoNotOptimize(database.insert("t", std::move(row)));
  }
}
BENCHMARK(BM_DewDbInsert);

void BM_DewDbFind(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  db::Database database;
  database.create_table(db::TableSchema{
      "t", "uid", indexed ? std::vector<std::string>{"name"} : std::vector<std::string>{}});
  for (int i = 0; i < 10000; ++i) {
    db::Row row;
    row["uid"] = std::to_string(i);
    row["name"] = std::string("n") + std::to_string(i % 100);
    database.insert("t", std::move(row));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(database.find("t", "name", db::Value{std::string("n42")}));
  }
  state.SetLabel(indexed ? "indexed" : "scan");
}
BENCHMARK(BM_DewDbFind)->Arg(0)->Arg(1);

void BM_MaxMinRecompute(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  sim::Simulator sim(1);
  net::Network net(sim);
  net.set_sharing_model(net::SharingModel::kMaxMin);
  const auto zone = net.add_zone("z");
  net::HostSpec server_spec;
  server_spec.name = "server";
  const auto server = net.add_host(zone, server_spec);
  std::vector<net::HostId> clients;
  for (int i = 0; i < flows; ++i) {
    net::HostSpec spec;
    spec.name = "c" + std::to_string(i);
    clients.push_back(net.add_host(zone, spec));
  }
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator fresh(1);
    net::Network fresh_net(fresh);
    fresh_net.set_sharing_model(net::SharingModel::kMaxMin);
    const auto z = fresh_net.add_zone("z");
    net::HostSpec ss;
    ss.name = "server";
    const auto s = fresh_net.add_host(z, ss);
    std::vector<net::HostId> cs;
    for (int i = 0; i < flows; ++i) {
      net::HostSpec spec;
      spec.name = "c" + std::to_string(i);
      cs.push_back(fresh_net.add_host(z, spec));
    }
    state.ResumeTiming();
    for (int i = 0; i < flows; ++i) {
      fresh_net.start_flow(s, cs[static_cast<std::size_t>(i)], 1000,
                           [](const net::FlowResult&) {});
    }
    fresh.run();
  }
  (void)server;
  (void)clients;
}
BENCHMARK(BM_MaxMinRecompute)->Arg(16)->Arg(64);

void BM_RingHash(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dht::ring_hash("data-" + std::to_string(i++)));
  }
}
BENCHMARK(BM_RingHash);

// --- live pipelined RPC over the epoll ServiceHost ----------------------------

/// One loopback daemon + bus, a registered datum, and a frames/s probe.
struct LoopbackRig {
  LoopbackRig() : container("server", clock), host(container, ddc, {0, true, -1}) {
    if (!host.start().ok()) std::abort();
    bus = std::make_unique<api::RemoteServiceBus>("127.0.0.1", host.port(),
                                                  api::RemoteBusConfig{2.0, 10.0});
    datum.uid = util::next_auid();
    datum.name = "bench";
    datum.size = 1 << 20;
    datum.checksum = "00112233445566778899aabbccddeeff";
    bool ok = false;
    bus->dc_register(datum, [&ok](api::Status s) { ok = s.ok(); });
    if (!ok) std::abort();
  }

  /// Issues `calls` dc_get frames at the given pipeline depth and returns
  /// the completed-frames-per-second over the wall clock.
  double frames_per_s(int depth, int calls) {
    bus->set_pipeline_depth(depth);
    int completed = 0;
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < calls; ++i) {
      bus->dc_get(datum.uid, [&completed](api::Expected<core::Data> reply) {
        if (reply.ok()) ++completed;
      });
    }
    bus->drain();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
    if (completed != calls || elapsed <= 0) return 0;
    return calls / elapsed;
  }

  util::ManualClock clock;
  services::ServiceContainer container;
  dht::LocalDht ddc;
  rpc::ServiceHost host;
  std::unique_ptr<api::RemoteServiceBus> bus;
  core::Data datum;
};

// Real sockets, real epoll host: the per-call cost of a scalar RPC at
// pipeline depth N. Depth 1 pays a full round trip (two context switches)
// per frame; deeper windows amortize the wakeups across the in-flight
// frames.
void BM_RpcLoopbackScalar(benchmark::State& state) {
  static LoopbackRig rig;  // one daemon for every depth arg
  const int depth = static_cast<int>(state.range(0));
  rig.bus->set_pipeline_depth(depth);
  int completed = 0;
  for (auto _ : state) {
    rig.bus->dc_get(rig.datum.uid, [&completed](api::Expected<core::Data> reply) {
      if (reply.ok()) ++completed;
    });
    if (rig.bus->in_flight() >= static_cast<std::size_t>(depth)) rig.bus->pump();
  }
  rig.bus->drain();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpcLoopbackScalar)->Arg(1)->Arg(8);

/// The CI gate: depth-8 pipelining must at least double depth-1 throughput
/// on the same build. Three rounds, best ratio wins (one noisy round on a
/// shared runner must not flake the gate).
int run_pipeline_gate() {
  constexpr int kCalls = 2000;
  constexpr double kThreshold = 2.0;
  LoopbackRig rig;
  rig.frames_per_s(1, 200);  // warm up: connection, allocator, branch caches
  double depth1 = 0;
  double depth8 = 0;
  double ratio = 0;
  for (int round = 0; round < 3 && ratio < kThreshold; ++round) {
    const double d1 = rig.frames_per_s(1, kCalls);
    const double d8 = rig.frames_per_s(8, kCalls);
    if (d1 <= 0 || d8 <= 0) continue;
    if (d8 / d1 > ratio) {
      ratio = d8 / d1;
      depth1 = d1;
      depth8 = d8;
    }
  }
  const bool pass = ratio >= kThreshold;
  std::printf(
      "{\"bench\":\"micro_substrate_pipeline_gate\",\"calls\":%d,"
      "\"depth1_frames_per_s\":%.0f,\"depth8_frames_per_s\":%.0f,"
      "\"ratio\":%.2f,\"threshold\":%.1f,\"pass\":%s}\n",
      kCalls, depth1, depth8, ratio, kThreshold, pass ? "true" : "false");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--pipeline-gate") return run_pipeline_gate();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
