// Figure 3a: completion time of distributing one file to N nodes, BitDew
// driving FTP vs BitTorrent, on the GdX cluster. Sweep: file size
// {10..500 MB} x nodes {10..250}. The paper's result: BitTorrent clearly
// outperforms FTP for files > 20 MB and > 10 nodes, with near-flat scaling
// in N; FTP grows linearly once the server uplink saturates.
//
// `--real` switches to the real data plane (PR 3): an in-process bitdewd
// (rpc::ServiceHost on loopback) and N concurrent transfer::TcpTransfer
// streams measuring put/get throughput over actual sockets vs chunk size —
// the knob docs/deployment.md tells operators to tune. `--mb N` sets the
// per-stream file size (default 8).
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "api/remote_service_bus.hpp"
#include "api/session.hpp"
#include "api/transfer_manager.hpp"
#include "bench_common.hpp"
#include "rpc/server.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "transfer/tcp.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace {

using namespace bitdew;

/// Distributes one file of `bytes` to `nodes` reservoirs via `protocol`;
/// returns the time from scheduling to the last completed replica.
double distribute(std::int64_t bytes, int nodes, const std::string& protocol) {
  sim::Simulator sim(23);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", nodes + 1});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0]);

  // The service host doubles as FTP server / BT seeder (paper §4.3 setup).
  runtime::SimNode& master = runtime.add_node(cluster.hosts[0], /*reservoir=*/false);
  int completed = 0;
  double last_done = 0;
  for (int i = 1; i <= nodes; ++i) {
    runtime::SimNode& node = runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)]);
    struct Done final : core::ActiveDataEventHandler {
      int* completed;
      double* last_done;
      sim::Simulator* sim;
      void on_data_copy(const core::Data&, const core::DataAttributes&) override {
        ++*completed;
        *last_done = sim->now();
      }
    };
    auto handler = std::make_shared<Done>();
    handler->completed = &completed;
    handler->last_done = &last_done;
    handler->sim = &sim;
    node.active_data().add_callback(handler);
  }

  const core::Content content = core::synthetic_content(7, bytes);
  const core::Data data = master.bitdew().create_data("payload", content);
  master.bitdew().put(data, content, nullptr, protocol);
  core::DataAttributes attributes;
  attributes.replica = core::kReplicaAll;
  attributes.protocol = protocol;
  const double start = sim.now();
  master.active_data().schedule(data, attributes);

  while (completed < nodes && sim.now() < 40000) {
    sim.run_until(sim.now() + 5.0);
  }
  return completed == nodes ? last_done - start : -1;
}

/// One measured cell of the real-socket sweep: `streams` concurrent
/// TcpTransfer uploads (then downloads) of `bytes` each against a live
/// ServiceHost, chunked at `chunk_bytes`. Returns {put_MBps, get_MBps}
/// aggregated across streams.
std::pair<double, double> real_cell(std::uint16_t port, const std::filesystem::path& dir,
                                    const std::string& payload, std::int64_t chunk_bytes,
                                    int streams) {
  api::TransferManager tm;
  tm.set_max_concurrent(streams);

  struct Stream {
    core::Data data;
    std::filesystem::path in_path;
    std::filesystem::path out_path;
  };
  std::vector<Stream> plan(static_cast<std::size_t>(streams));
  {
    // Register the slots over one control connection up front; the timed
    // region below is pure data plane.
    api::RemoteServiceBus control("127.0.0.1", port);
    api::BitDew bitdew(control, "bench");
    api::ActiveData active_data(control, "bench");
    api::Session session(bitdew, active_data);
    for (int i = 0; i < streams; ++i) {
      Stream& stream = plan[static_cast<std::size_t>(i)];
      stream.in_path = dir / ("in-" + std::to_string(chunk_bytes) + "-" + std::to_string(i));
      stream.out_path = dir / ("out-" + std::to_string(chunk_bytes) + "-" + std::to_string(i));
      std::ofstream(stream.in_path, std::ios::binary) << payload;
      const auto data = session.create_data(
          "real-" + std::to_string(chunk_bytes) + "-" + std::to_string(i),
          core::file_content(stream.in_path.string()));
      if (!data.ok()) throw std::runtime_error(data.error().to_string());
      stream.data = *data;
    }
  }

  auto run_phase = [&](bool upload) {
    const auto started = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(plan.size());
    for (const Stream& stream : plan) {
      workers.emplace_back([&, stream] {
        // Each stream is its own out-of-band TCP connection.
        api::RemoteServiceBus bus("127.0.0.1", port);
        transfer::TcpTransfer engine(bus, transfer::TcpConfig{chunk_bytes, 3, false});
        tm.begin(stream.data.uid);
        const api::Status outcome =
            upload ? engine.put_file(stream.data, stream.in_path.string())
                   : engine.get_file(stream.data, stream.out_path.string());
        tm.finish(stream.data.uid, outcome);
        if (!outcome.ok()) {
          std::fprintf(stderr, "stream failed: %s\n", outcome.error().to_string().c_str());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - started).count();
    const double total_mb = static_cast<double>(payload.size()) * plan.size() / 1e6;
    return elapsed > 0 ? total_mb / elapsed : 0.0;
  };

  const double put_rate = run_phase(/*upload=*/true);
  const double get_rate = run_phase(/*upload=*/false);
  for (const Stream& stream : plan) {
    std::error_code ec;
    std::filesystem::remove(stream.in_path, ec);
    std::filesystem::remove(stream.out_path, ec);
  }
  return {put_rate, get_rate};
}

int run_real(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const int mb = int_flag(argc, argv, "--mb", 8);

  static util::SystemClock clock;
  services::ServiceContainer container("bench-dr", clock);
  dht::LocalDht ddc;
  rpc::ServiceHost host(container, ddc, rpc::ServiceHostConfig{0, /*loopback_only=*/true, -1});
  const api::Status started = host.start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start host: %s\n", started.error().to_string().c_str());
    return 1;
  }

  const auto dir = std::filesystem::temp_directory_path() /
                   ("bitdew-fig3a-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::string payload(static_cast<std::size_t>(mb) * 1000 * 1000, '\0');
  util::Rng rng(0xf16a3);
  for (char& byte : payload) byte = static_cast<char>(rng.below(256));

  const std::vector<std::int64_t> chunk_sizes =
      full ? std::vector<std::int64_t>{64 << 10, 256 << 10, 1 << 20, 4 << 20}
           : std::vector<std::int64_t>{64 << 10, 256 << 10, 1 << 20};
  const std::vector<int> stream_counts = full ? std::vector<int>{1, 2, 4, 8}
                                              : std::vector<int>{1, 4};

  header("Figure 3a (real) — put/get throughput over live sockets vs chunk size",
         "PR 3 data plane: chunked, checksummed transfers to an in-process bitdewd");
  std::printf("%-12s %-8s | %14s %14s\n", "chunk", "streams", "put(MB/s)", "get(MB/s)");
  rule();
  JsonEmitter json("fig3a_transfer_real", argc, argv);
  for (const std::int64_t chunk : chunk_sizes) {
    for (const int streams : stream_counts) {
      const auto [put_rate, get_rate] = real_cell(host.port(), dir, payload, chunk, streams);
      std::printf("%-12s %-8d | %14.1f %14.1f\n", util::human_bytes(chunk).c_str(), streams,
                  put_rate, get_rate);
      json.row({{"chunk_bytes", static_cast<double>(chunk)},
                {"streams", streams},
                {"file_mb", mb},
                {"put_MBps", put_rate},
                {"get_MBps", get_rate}});
    }
  }
  std::printf("\nexpected shape: throughput rises with chunk size until the per-chunk\n"
              "round-trip stops dominating; concurrent streams help most at small chunks.\n");

  host.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  if (has_flag(argc, argv, "--real")) return run_real(argc, argv);
  const bool full = has_flag(argc, argv, "--full");
  const std::vector<std::int64_t> sizes =
      full ? std::vector<std::int64_t>{10, 50, 100, 250, 500}
           : std::vector<std::int64_t>{10, 100, 500};
  const std::vector<int> node_counts = full ? std::vector<int>{10, 20, 50, 100, 150, 200, 250}
                                            : std::vector<int>{10, 50, 150};

  header("Figure 3a — file distribution completion time, FTP vs BitTorrent",
         "paper Fig. 3a: sizes 10-500 MB, 10-250 nodes, GdX cluster");
  std::printf("%-10s %-8s | %12s %12s | %s\n", "size(MB)", "nodes", "ftp(s)", "bt(s)",
              "winner");
  rule();
  for (const std::int64_t mb : sizes) {
    for (const int nodes : node_counts) {
      const double ftp = distribute(mb * util::kMB, nodes, "ftp");
      const double bt = distribute(mb * util::kMB, nodes, "bittorrent");
      std::printf("%-10lld %-8d | %12.1f %12.1f | %s\n", static_cast<long long>(mb), nodes,
                  ftp, bt, bt < ftp ? "bittorrent" : "ftp");
    }
  }
  std::printf("\nexpected shape (paper): FTP ~linear in nodes (server uplink bound);\n"
              "BT ~flat; BT wins for size > 20MB and nodes > 10, FTP wins small/few.\n");
  return 0;
}
