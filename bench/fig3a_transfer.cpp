// Figure 3a: completion time of distributing one file to N nodes, BitDew
// driving FTP vs BitTorrent, on the GdX cluster. Sweep: file size
// {10..500 MB} x nodes {10..250}. The paper's result: BitTorrent clearly
// outperforms FTP for files > 20 MB and > 10 nodes, with near-flat scaling
// in N; FTP grows linearly once the server uplink saturates.
#include "bench_common.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

/// Distributes one file of `bytes` to `nodes` reservoirs via `protocol`;
/// returns the time from scheduling to the last completed replica.
double distribute(std::int64_t bytes, int nodes, const std::string& protocol) {
  sim::Simulator sim(23);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", nodes + 1});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0]);

  // The service host doubles as FTP server / BT seeder (paper §4.3 setup).
  runtime::SimNode& master = runtime.add_node(cluster.hosts[0], /*reservoir=*/false);
  int completed = 0;
  double last_done = 0;
  for (int i = 1; i <= nodes; ++i) {
    runtime::SimNode& node = runtime.add_node(cluster.hosts[static_cast<std::size_t>(i)]);
    struct Done final : core::ActiveDataEventHandler {
      int* completed;
      double* last_done;
      sim::Simulator* sim;
      void on_data_copy(const core::Data&, const core::DataAttributes&) override {
        ++*completed;
        *last_done = sim->now();
      }
    };
    auto handler = std::make_shared<Done>();
    handler->completed = &completed;
    handler->last_done = &last_done;
    handler->sim = &sim;
    node.active_data().add_callback(handler);
  }

  const core::Content content = core::synthetic_content(7, bytes);
  const core::Data data = master.bitdew().create_data("payload", content);
  master.bitdew().put(data, content, nullptr, protocol);
  core::DataAttributes attributes;
  attributes.replica = core::kReplicaAll;
  attributes.protocol = protocol;
  const double start = sim.now();
  master.active_data().schedule(data, attributes);

  while (completed < nodes && sim.now() < 40000) {
    sim.run_until(sim.now() + 5.0);
  }
  return completed == nodes ? last_done - start : -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const std::vector<std::int64_t> sizes =
      full ? std::vector<std::int64_t>{10, 50, 100, 250, 500}
           : std::vector<std::int64_t>{10, 100, 500};
  const std::vector<int> node_counts = full ? std::vector<int>{10, 20, 50, 100, 150, 200, 250}
                                            : std::vector<int>{10, 50, 150};

  header("Figure 3a — file distribution completion time, FTP vs BitTorrent",
         "paper Fig. 3a: sizes 10-500 MB, 10-250 nodes, GdX cluster");
  std::printf("%-10s %-8s | %12s %12s | %s\n", "size(MB)", "nodes", "ftp(s)", "bt(s)",
              "winner");
  rule();
  for (const std::int64_t mb : sizes) {
    for (const int nodes : node_counts) {
      const double ftp = distribute(mb * util::kMB, nodes, "ftp");
      const double bt = distribute(mb * util::kMB, nodes, "bittorrent");
      std::printf("%-10lld %-8d | %12.1f %12.1f | %s\n", static_cast<long long>(mb), nodes,
                  ftp, bt, bt < ftp ? "bittorrent" : "ftp");
    }
  }
  std::printf("\nexpected shape (paper): FTP ~linear in nodes (server uplink bound);\n"
              "BT ~flat; BT wins for size > 20MB and nodes > 10, FTP wins small/few.\n");
  return 0;
}
