// Figure 5: master/worker BLAST — total execution time (distribute the
// 2.68 GB genebase + sequences, run the searches, collect results) as the
// number of workers grows, with FTP vs BitTorrent as the genebase transfer
// protocol. The paper: FTP degrades sharply past ~50 workers while the
// BitTorrent curve is nearly flat; BT is slightly worse at 10-20 workers.
#include "bench_common.hpp"
#include "mw/blast.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

double run_blast(int workers, const std::string& protocol, std::int64_t genebase_bytes) {
  sim::Simulator sim(37);
  net::Network net(sim);
  const auto cluster =
      testbed::make_cluster(net, testbed::ClusterSpec{"gdx", workers + 2, 125e6, 100e-6, 2.2});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0], mw::blast_runtime_config());

  mw::BlastWorkload workload;
  workload.genebase_bytes = genebase_bytes;
  workload.transfer_protocol = protocol;

  mw::BlastApplication app(runtime, workload);
  std::vector<mw::BlastWorkerSpec> specs;
  for (int i = 2; i < workers + 2; ++i) {
    specs.push_back(
        mw::BlastWorkerSpec{cluster.hosts[static_cast<std::size_t>(i)], 2.2, "gdx"});
  }
  app.deploy(cluster.hosts[1], specs, workers);
  app.run(200000);
  return app.done() ? app.report().total_time_s : -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const std::vector<int> worker_counts =
      full ? std::vector<int>{10, 20, 50, 100, 150, 200, 250, 275}
           : std::vector<int>{10, 50, 100};
  // The full 2.68 GB genebase; quick mode scales it down 10x to keep the
  // default bench run short (the curves keep their shape).
  const std::int64_t genebase =
      full ? std::int64_t{2'680'000'000} : std::int64_t{268'000'000};

  header("Figure 5 — BLAST master/worker: total time vs workers, FTP vs BT",
         "paper Fig. 5: 2.68 GB genebase, 10-275 workers");
  std::printf("genebase: %s, one task per worker\n\n", util::human_bytes(genebase).c_str());
  std::printf("%-10s | %12s %12s | %s\n", "workers", "ftp(s)", "bt(s)", "winner");
  rule();
  for (const int workers : worker_counts) {
    const double ftp = run_blast(workers, "ftp", genebase);
    const double bt = run_blast(workers, "bittorrent", genebase);
    std::printf("%-10d | %12.1f %12.1f | %s\n", workers, ftp, bt,
                (bt >= 0 && (ftp < 0 || bt < ftp)) ? "bittorrent" : "ftp");
  }
  std::printf("\nexpected shape (paper): FTP total time climbs steeply with workers;\n"
              "BitTorrent stays nearly flat; BT slightly worse at 10-20 workers.\n");
  return 0;
}
