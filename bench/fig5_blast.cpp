// Figure 5: master/worker BLAST — total execution time (distribute the
// 2.68 GB genebase + sequences, run the searches, collect results) as the
// number of workers grows, with FTP vs BitTorrent as the genebase transfer
// protocol. The paper: FTP degrades sharply past ~50 workers while the
// BitTorrent curve is nearly flat; BT is slightly worse at 10-20 workers.
//
// --real [--json PATH]: the same master/worker shape over the LIVE job
// subsystem instead of the simulator — an in-process bitdewd (ServiceHost),
// N NodeRuntimes each running a TaskRunner, a replica=-1 corpus, and one
// job whose tasks fork real grep processes on the workers' replicas
// (compute-to-data). Measures completion wall time vs N and the fraction
// of tasks that ran data-local (the replica-affinity placement win).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <unistd.h>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "dht/local_dht.hpp"
#include "jobs/task_runner.hpp"
#include "mw/blast.hpp"
#include "rpc/server.hpp"
#include "runtime/node_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace {

using namespace bitdew;

double run_blast(int workers, const std::string& protocol, std::int64_t genebase_bytes) {
  sim::Simulator sim(37);
  net::Network net(sim);
  const auto cluster =
      testbed::make_cluster(net, testbed::ClusterSpec{"gdx", workers + 2, 125e6, 100e-6, 2.2});
  runtime::SimRuntime runtime(sim, net, cluster.hosts[0], mw::blast_runtime_config());

  mw::BlastWorkload workload;
  workload.genebase_bytes = genebase_bytes;
  workload.transfer_protocol = protocol;

  mw::BlastApplication app(runtime, workload);
  std::vector<mw::BlastWorkerSpec> specs;
  for (int i = 2; i < workers + 2; ++i) {
    specs.push_back(
        mw::BlastWorkerSpec{cluster.hosts[static_cast<std::size_t>(i)], 2.2, "gdx"});
  }
  app.deploy(cluster.hosts[1], specs, workers);
  app.run(200000);
  return app.done() ? app.report().total_time_s : -1;
}

struct RealRun {
  double total_s = -1;
  int tasks = 0;
  int data_local = 0;
  int replaced = 0;
  bool ok = false;
};

/// One live round: in-process daemon, `workers` reservoir nodes with task
/// runners, a broadcast corpus of `tasks` chunks, one grep job over it.
RealRun run_real(int workers, int tasks) {
  RealRun out;
  out.tasks = tasks;
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("fig5_real_" + std::to_string(::getpid()) + "_" + std::to_string(workers));
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  static util::WallClock clock;
  services::ServiceContainer container("bench", clock);
  dht::LocalDht ddc;
  rpc::ServiceHostConfig host_config;
  host_config.port = 0;
  host_config.loopback_only = true;
  rpc::ServiceHost host(container, ddc, host_config);
  if (!host.start().ok()) return out;
  const std::uint16_t port = host.port();

  std::vector<std::unique_ptr<runtime::NodeRuntime>> nodes;
  std::vector<std::shared_ptr<jobs::TaskRunner>> runners;
  for (int i = 0; i < workers; ++i) {
    runtime::NodeRuntimeConfig config;
    config.name = "w" + std::to_string(i);
    config.cache_dir = (root / config.name).string();
    config.heartbeat_period_s = 0.2;
    auto node = std::make_unique<runtime::NodeRuntime>("127.0.0.1", port, config);
    if (!node->start().ok()) return out;
    jobs::TaskRunnerConfig runner_config;
    runner_config.exec_slots = 2;
    runner_config.scratch_dir = (root / (config.name + "-scratch")).string();
    auto runner = std::make_shared<jobs::TaskRunner>(*node, "127.0.0.1", port, runner_config);
    if (!runner->start().ok()) return out;
    node->active_data().add_callback(runner);
    runners.push_back(std::move(runner));
    nodes.push_back(std::move(node));
  }
  runtime::NodeRuntimeConfig collector_config;
  collector_config.name = "collector";
  collector_config.cache_dir = (root / "collector").string();
  collector_config.heartbeat_period_s = 0.2;
  runtime::NodeRuntime collector("127.0.0.1", port, collector_config);
  if (!collector.start().ok()) return out;

  auto shutdown = [&] {
    for (auto& runner : runners) runner->stop();
    for (auto& node : nodes) node->stop();
    collector.stop();
    host.stop();
    std::error_code ec;
    std::filesystem::remove_all(root, ec);
  };

  api::RemoteServiceBus bus("127.0.0.1", port);
  api::BitDew bitdew(bus, "bench");
  api::ActiveData active_data(bus, "bench");
  api::Session session(bitdew, active_data);

  // Collector token: zero-size, pinned on the collector node; result
  // datums take affinity (and a relative lifetime) on it.
  const api::Expected<core::Data> token = session.create_data("fig5-collector");
  bool wired = token.ok();
  if (wired) {
    core::DataAttributes attributes;
    attributes.name = "fig5-collector";
    attributes.replica = 0;
    wired = session.schedule(*token, attributes).ok();
  }
  if (wired) {
    api::Status pinned = api::ok_status();
    bus.ds_pin(token->uid, "collector", [&](api::Status reply) { pinned = reply; });
    collector.sync_now();
    wired = pinned.ok() && collector.wait_for(token->uid, 20);
  }
  if (!wired) {
    shutdown();
    return out;
  }

  // The corpus: one line-built chunk per task, broadcast to every node
  // over the peer plane (paper Fig. 5's genebase distribution, scaled to a
  // bench-sized text file).
  std::vector<util::Auid> inputs;
  for (int i = 0; i < tasks; ++i) {
    const std::string chunk_path = (root / ("chunk-" + std::to_string(i))).string();
    std::ofstream chunk(chunk_path, std::ios::binary | std::ios::trunc);
    for (int line = 0; line < 400; ++line) {
      chunk << "seq " << i << " read " << line << " ACGTACGTACGT\n";
    }
    chunk.close();
    const api::Expected<core::Data> data =
        session.put_file("fig5-chunk-" + std::to_string(i), chunk_path);
    bool scheduled = data.ok();
    if (scheduled) {
      core::DataAttributes attributes;
      attributes.name = "fig5-corpus";
      attributes.replica = core::kReplicaAll;
      attributes.fault_tolerant = true;
      attributes.protocol = "p2p";
      scheduled = session.schedule(*data, attributes).ok();
    }
    if (!scheduled) {
      shutdown();
      return out;
    }
    inputs.push_back(data->uid);
  }

  // One job, one grep task per chunk ("the search"), timed submit to done.
  jobs::JobSpec spec;
  spec.uid = util::next_auid();
  spec.name = "fig5-grep";
  spec.argv = {"/bin/sh", "-c", "grep -c ACGT -- \"$0\" > \"$1\"", "{input}", "{output}"};
  spec.timeout_s = 30;
  spec.inputs = inputs;
  spec.collector = token->uid;
  const auto t0 = std::chrono::steady_clock::now();
  api::Expected<util::Auid> submitted =
      api::Error{api::Errc::kUnavailable, "bench", "pending"};
  bus.job_submit(spec, [&](api::Expected<util::Auid> reply) { submitted = std::move(reply); });
  if (!submitted.ok()) {
    shutdown();
    return out;
  }
  const auto deadline = t0 + std::chrono::seconds(120);
  jobs::JobStatusInfo status;
  while (std::chrono::steady_clock::now() < deadline) {
    api::Expected<jobs::JobStatusInfo> reply =
        api::Error{api::Errc::kUnavailable, "bench", "pending"};
    bus.job_status(*submitted, [&](api::Expected<jobs::JobStatusInfo> r) { reply = std::move(r); });
    if (reply.ok()) {
      status = *reply;
      if (status.complete() || status.failed > 0) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (status.complete()) {
    out.ok = true;
    out.total_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    out.data_local = status.data_local;
    out.replaced = status.replaced;
  }
  shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");

  if (has_flag(argc, argv, "--real")) {
    util::set_log_level(util::LogLevel::kError);
    JsonEmitter json("fig5_blast_real", argc, argv);
    const std::vector<int> counts =
        full ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 3, 4};
    header("Figure 5 (live) — grep master/worker over the job subsystem",
           "paper §5: compute-to-data with replica-affinity placement, real processes");
    std::printf("%-10s | %8s %10s %14s %10s\n", "workers", "tasks", "total(s)",
                "data-local", "re-placed");
    rule();
    for (const int workers : counts) {
      const RealRun run = run_real(workers, 3 * workers);
      if (!run.ok) {
        std::printf("%-10d | job did not complete\n", workers);
        continue;
      }
      const double frac =
          run.tasks > 0 ? static_cast<double>(run.data_local) / run.tasks : 0.0;
      std::printf("%-10d | %8d %10.2f %9d/%d (%3.0f%%) %8d\n", workers, run.tasks,
                  run.total_s, run.data_local, run.tasks, 100 * frac, run.replaced);
      json.row({{"workers", workers},
                {"tasks", run.tasks},
                {"total_s", run.total_s},
                {"data_local_frac", frac},
                {"replaced", run.replaced}});
    }
    std::printf("\nexpected shape: total time stays nearly flat as workers grow (tasks\n"
                "scale with N and run where their replica already is — the paper's\n"
                "compute-to-data win); data-local should be ~100%% on a quiet fleet.\n");
    return 0;
  }
  const std::vector<int> worker_counts =
      full ? std::vector<int>{10, 20, 50, 100, 150, 200, 250, 275}
           : std::vector<int>{10, 50, 100};
  // The full 2.68 GB genebase; quick mode scales it down 10x to keep the
  // default bench run short (the curves keep their shape).
  const std::int64_t genebase =
      full ? std::int64_t{2'680'000'000} : std::int64_t{268'000'000};

  header("Figure 5 — BLAST master/worker: total time vs workers, FTP vs BT",
         "paper Fig. 5: 2.68 GB genebase, 10-275 workers");
  std::printf("genebase: %s, one task per worker\n\n", util::human_bytes(genebase).c_str());
  std::printf("%-10s | %12s %12s | %s\n", "workers", "ftp(s)", "bt(s)", "winner");
  rule();
  for (const int workers : worker_counts) {
    const double ftp = run_blast(workers, "ftp", genebase);
    const double bt = run_blast(workers, "bittorrent", genebase);
    std::printf("%-10d | %12.1f %12.1f | %s\n", workers, ftp, bt,
                (bt >= 0 && (ftp < 0 || bt < ftp)) ? "bittorrent" : "ftp");
  }
  std::printf("\nexpected shape (paper): FTP total time climbs steeply with workers;\n"
              "BitTorrent stays nearly flat; BT slightly worse at 10-20 workers.\n");
  return 0;
}
