// Figure 6: breakdown of BLAST total execution time into transfer / unzip /
// execution, per Grid'5000 cluster (Table 1: gdx, grelon, grillon,
// sagittaire) and averaged, for FTP vs BitTorrent. The paper's headline:
// with BitTorrent, data delivery is ~10x faster, so transfer stops
// dominating the end-to-end time.
#include "bench_common.hpp"
#include "mw/blast.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

mw::BlastReport run_grid(const std::string& protocol, double scale,
                         std::int64_t genebase_bytes) {
  sim::Simulator sim(41);
  net::Network net(sim);
  testbed::Grid5000 grid = testbed::make_grid5000(net, scale);

  // Service host joins the gdx site (where the paper's servers sat).
  net::HostSpec service_spec;
  service_spec.name = "services";
  const net::HostId service_host = net.add_host(grid.clusters[0].zone, service_spec);
  runtime::SimRuntime runtime(sim, net, service_host, mw::blast_runtime_config());

  mw::BlastWorkload workload;
  workload.genebase_bytes = genebase_bytes;
  workload.transfer_protocol = protocol;

  std::vector<mw::BlastWorkerSpec> specs;
  for (const testbed::Cluster& cluster : grid.clusters) {
    for (std::size_t i = 0; i < cluster.hosts.size(); ++i) {
      if (cluster.name == "gdx" && i == 0) continue;  // reserved for master
      specs.push_back(mw::BlastWorkerSpec{cluster.hosts[i], cluster.cpu_ghz, cluster.name});
    }
  }

  mw::BlastApplication app(runtime, workload);
  app.deploy(grid.clusters[0].hosts[0], specs, static_cast<int>(specs.size()));
  app.run(400000);
  return app.report();
}

void print_report(const char* protocol, const mw::BlastReport& report) {
  const auto clusters = report.by_cluster();
  for (const auto& [name, b] : clusters) {
    if (name == "master") continue;
    std::printf("%-12s %-6s | %10.1f %10.1f %10.1f | %8d\n", name.c_str(), protocol,
                b.transfer_s, b.unzip_s, b.exec_s, b.workers);
  }
  const auto mean = report.overall();
  std::printf("%-12s %-6s | %10.1f %10.1f %10.1f | %8d   (total %.1fs, done=%d)\n", "mean",
              protocol, mean.transfer_s, mean.unzip_s, mean.exec_s, mean.workers,
              report.total_time_s, report.completed ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  // Paper: 400 nodes of the 544 in Table 1 -> scale 400/544. Quick mode
  // runs a 10% slice with a 10x smaller genebase.
  const double scale = full ? (400.0 / 544.0) : 0.1;
  const std::int64_t genebase =
      full ? std::int64_t{2'680'000'000} : std::int64_t{268'000'000};

  header("Figure 6 — BLAST time breakdown by cluster (transfer/unzip/exec)",
         "paper Fig. 6: 400 nodes over 4 Grid'5000 clusters, ftp vs bt");
  std::printf("scale: %.2f of Table 1 (%s genebase)\n\n", scale,
              util::human_bytes(genebase).c_str());
  std::printf("%-12s %-6s | %10s %10s %10s | %8s\n", "cluster", "proto", "transfer(s)",
              "unzip(s)", "exec(s)", "workers");
  rule(76);
  for (const char* protocol : {"ftp", "bt"}) {
    const std::string name = std::string(protocol) == "bt" ? "bittorrent" : "ftp";
    print_report(protocol, run_grid(name, scale, genebase));
  }
  std::printf("\nexpected shape (paper): under FTP, transfer dominates everything;\n"
              "under BitTorrent delivery is ~an order of magnitude faster and the\n"
              "breakdown is led by unzip+execution instead.\n");
  return 0;
}
