// Figure 3b/5 (live): collective distribution of one file to N workers over
// REAL processes and sockets — the paper's headline scalability claim. The
// same experiment runs twice per N:
//
//  * repository-only (oob=tcp): every worker pulls every chunk from the
//    single bitdewd Data Repository — egress grows as N file copies and the
//    central store is the bottleneck (the paper's "FTP" curve);
//  * peer-assisted (oob=p2p): the scheduler's swarm gate seeds ONE copy
//    from the repository, then each generation of verified replicas serves
//    the next through the workers' embedded chunk servers (peer locators in
//    the SyncReply, multi-source striping, repository fallback) — the
//    paper's "BitTorrent" curve, with repository egress bounded at O(one
//    file copy).
//
// Measured per (mode, N): wall-clock completion (schedule -> every worker
// holds an MD5-verified replica) and repository egress (dr_stats
// chunk-read bytes, i.e. what the central store actually shipped).
//
//   fig3b_collective --real [--json PATH] [--workers N] [--size BYTES]
//                    [--chunk BYTES] [--rate BYTES/s] [--full]
//
// --rate caps EVERY serving node's uplink (the daemon's data plane and each
// worker's chunk server) through util::RateShaper, reproducing the paper's
// bandwidth-bound testbed: on raw loopback the "network" is as fast as
// memcpy, which flatters the central store — DSL-Lab providers ship
// 53-492 KB/s. Default 64MB/s per node; --rate 0 runs unshaped (then a
// single-core machine shows egress bounded but completion CPU-bound at
// parity, since every byte crosses the same silicon either way).
//
// Without --real this bench only prints a pointer: the simulated collective
// curves live in fig3bc_overhead / fig5_blast / ablate_bt.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "rpc/server.hpp"
#include "runtime/node_runtime.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

constexpr double kHeartbeat = 0.1;  // shrunk from the paper's 1 s to keep the
                                    // sweep fast; the shape is what matters

struct RunResult {
  bool ok = false;
  double completion_s = 0;        ///< schedule -> all N workers verified
  std::int64_t repo_bytes = 0;    ///< repository egress during the run
  std::int64_t peer_bytes = 0;    ///< bytes the workers served each other
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Distributes one `payload_bytes` file to `n_workers` with oob=`mode`
/// ("tcp" = repository-only, "p2p" = peer-assisted). `uplink_Bps` caps
/// every serving node's egress (0 = unshaped).
RunResult run_once(const std::string& mode, int n_workers, const std::string& payload_path,
                   std::int64_t payload_bytes, std::int64_t chunk_bytes, double uplink_Bps) {
  RunResult result;
  static util::SystemClock clock;
  services::SchedulerConfig scheduler;
  scheduler.heartbeat_period_s = kHeartbeat;
  scheduler.max_data_schedule = 16;
  services::ServiceContainer container("bitdewd", clock, scheduler);
  dht::LocalDht ddc;
  rpc::ServiceHostConfig host_config;
  host_config.loopback_only = true;
  host_config.failure_sweep_period_s = kHeartbeat;
  host_config.data_plane_upload_Bps = uplink_Bps;
  rpc::ServiceHost host(container, ddc, host_config);
  if (!host.start().ok()) return result;

  const auto dir = std::filesystem::temp_directory_path() /
                   ("bitdew-fig3b-" + std::to_string(::getpid()));
  struct DirGuard {
    std::filesystem::path dir;
    ~DirGuard() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } guard{dir};

  std::vector<std::unique_ptr<runtime::NodeRuntime>> workers;
  for (int i = 0; i < n_workers; ++i) {
    runtime::NodeRuntimeConfig config;
    config.name = "w" + std::to_string(i);
    config.cache_dir = (dir / config.name).string();
    std::filesystem::remove_all(config.cache_dir);
    config.heartbeat_period_s = kHeartbeat;
    config.chunk_bytes = chunk_bytes;
    config.peer_upload_Bps = uplink_Bps;
    workers.push_back(
        std::make_unique<runtime::NodeRuntime>("127.0.0.1", host.port(), config));
    if (!workers.back()->start().ok()) return result;
  }

  api::RemoteServiceBus client(std::string("127.0.0.1"), host.port());
  api::BitDew bitdew(client, "master");
  api::ActiveData active_data(client, "master");
  api::Session session(bitdew, active_data);

  auto repo_read_bytes = [&]() -> std::int64_t {
    std::optional<api::Expected<services::RepoStats>> stats;
    client.dr_stats([&](api::Expected<services::RepoStats> reply) { stats = std::move(reply); });
    return stats.has_value() && stats->ok() ? (*stats)->chunk_read_bytes : -1;
  };

  const api::Expected<core::Data> data = session.put_file("collective", payload_path);
  if (!data.ok()) return result;
  const std::int64_t egress_before = repo_read_bytes();

  core::DataAttributes attributes;
  attributes.replica = core::kReplicaAll;  // the paper's broadcast experiment
  attributes.protocol = mode;
  const auto scheduled_at = std::chrono::steady_clock::now();
  if (!session.schedule(*data, attributes).ok()) return result;

  auto holders = [&] {
    int count = 0;
    for (const auto& worker : workers) {
      if (worker->has(data->uid)) ++count;
    }
    return count;
  };
  // Budget: N file copies over one shaped uplink is the worst case
  // (repository-only), plus heartbeats and a generous margin.
  const double budget =
      60.0 + 2.0 * n_workers +
      (uplink_Bps > 0 ? 2.0 * n_workers * static_cast<double>(payload_bytes) / uplink_Bps : 0);
  while (holders() < n_workers && seconds_since(scheduled_at) < budget) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (holders() < n_workers) return result;
  result.completion_s = seconds_since(scheduled_at);

  // Every replica really is byte-correct (MD5 re-hash from disk).
  for (const auto& worker : workers) {
    const core::Content replica = core::file_content(worker->replica_path(data->uid));
    if (replica.size != payload_bytes || replica.checksum != data->checksum) return result;
  }
  result.repo_bytes = repo_read_bytes() - egress_before;
  for (const auto& worker : workers) {
    result.peer_bytes += worker->stats().peer_bytes_served;
  }
  for (auto& worker : workers) worker->stop();
  host.stop();
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  if (!has_flag(argc, argv, "--real")) {
    std::printf("fig3b_collective is a live-process bench: run with --real.\n"
                "(The simulated collective-distribution curves are produced by\n"
                " fig3bc_overhead, fig5_blast and ablate_bt.)\n");
    return 0;
  }
  const bool full = has_flag(argc, argv, "--full");
  JsonEmitter json("fig3b_collective_real", argc, argv);

  const std::int64_t payload_bytes =
      [&]() -> std::int64_t {
    const char* size = flag_value(argc, argv, "--size");
    return size != nullptr ? util::parse_bytes(size) : 16 * util::kMB;
  }();
  const std::int64_t chunk_bytes = [&]() -> std::int64_t {
    const char* chunk = flag_value(argc, argv, "--chunk");
    return chunk != nullptr ? util::parse_bytes(chunk) : 256 * util::kKB;
  }();
  const double uplink_Bps = [&]() -> double {
    const char* rate = flag_value(argc, argv, "--rate");
    return rate != nullptr ? static_cast<double>(util::parse_bytes(rate))
                           : static_cast<double>(64 * util::kMB);
  }();

  std::vector<int> worker_counts = {2, 4, 8};
  if (full) worker_counts.push_back(12);
  if (const int only = int_flag(argc, argv, "--workers", 0); only > 0) {
    worker_counts = {only};
  }

  header("Figure 3b/5 (live) — collective distribution: repository-only vs peer-assisted",
         "paper Fig. 3a/5: completion flat & egress O(1 copy) with peer exchange,"
         " linear with a central store");

  // A deterministic multi-chunk payload on disk.
  const std::string payload_path =
      (std::filesystem::temp_directory_path() /
       ("bitdew-fig3b-payload-" + std::to_string(::getpid()) + ".bin"))
          .string();
  {
    std::string bytes(static_cast<std::size_t>(payload_bytes), '\0');
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<char>((i * 131 + 7) & 0xff);
    }
    std::ofstream(payload_path, std::ios::binary) << bytes;
  }

  if (uplink_Bps > 0) {
    std::printf("payload %s, chunk %s, heartbeat %.2fs, per-node uplink %s/s\n\n",
                bitdew::util::human_bytes(payload_bytes).c_str(),
                bitdew::util::human_bytes(chunk_bytes).c_str(), kHeartbeat,
                bitdew::util::human_bytes(static_cast<std::int64_t>(uplink_Bps)).c_str());
  } else {
    std::printf("payload %s, chunk %s, heartbeat %.2fs, unshaped loopback\n\n",
                bitdew::util::human_bytes(payload_bytes).c_str(),
                bitdew::util::human_bytes(chunk_bytes).c_str(), kHeartbeat);
  }
  std::printf("%-8s | %-16s | %12s | %14s | %12s\n", "workers", "mode", "complete(s)",
              "repo egress", "peer bytes");
  rule(76);

  bool ok = true;
  for (const int n : worker_counts) {
    RunResult repo_only;
    RunResult peer;
    for (const auto& [mode, slot] :
         {std::pair<const char*, RunResult*>{"tcp", &repo_only}, {"p2p", &peer}}) {
      *slot = run_once(mode, n, payload_path, payload_bytes, chunk_bytes, uplink_Bps);
      if (!slot->ok) {
        std::printf("%-8d | %-16s | %12s | %14s | %12s  FAILED\n", n, mode, "-", "-", "-");
        ok = false;
        continue;
      }
      std::printf("%-8d | %-16s | %12.2f | %14s | %12s\n", n,
                  std::string(mode) == "tcp" ? "repository-only" : "peer-assisted",
                  slot->completion_s, bitdew::util::human_bytes(slot->repo_bytes).c_str(),
                  bitdew::util::human_bytes(slot->peer_bytes).c_str());
      json.row({{"mode", mode},
                {"workers", n},
                {"payload_mb", static_cast<double>(payload_bytes) / (1 << 20)},
                {"uplink_mbps", uplink_Bps / (1 << 20)},
                {"completion_s", slot->completion_s},
                {"repo_egress_mb", static_cast<double>(slot->repo_bytes) / (1 << 20)},
                {"repo_file_equivalents",
                 static_cast<double>(slot->repo_bytes) / static_cast<double>(payload_bytes)},
                {"peer_mb", static_cast<double>(slot->peer_bytes) / (1 << 20)}});
    }
    if (repo_only.ok && peer.ok) {
      std::printf("%-8s | peer egress bound: %.2f file copies (repo-only shipped %.2f)\n", "",
                  static_cast<double>(peer.repo_bytes) / static_cast<double>(payload_bytes),
                  static_cast<double>(repo_only.repo_bytes) /
                      static_cast<double>(payload_bytes));
    }
  }
  std::filesystem::remove(payload_path);
  std::printf("\nexpected shape (paper Fig. 3a/5): peer-assisted completion stays near-flat\n"
              "as N grows and repository egress stays ~1 file copy + stripe slop;\n"
              "repository-only egress grows as N copies through the single daemon.\n");
  return ok ? 0 : 1;
}
