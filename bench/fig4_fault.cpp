// Figure 4: fault-tolerance scenario on DSL-Lab. A datum with
// {replica = 5, fault_tolerance = true, protocol = ftp} starts on 5 ADSL
// hosts; every 20 s one owner is killed and a fresh host joins. The paper's
// Gantt shows a ~3 s waiting time before each replacement download (the
// 3x-heartbeat failure detector) and widely varying download bandwidths
// (53-492 KB/s across providers). This bench prints the same event log and
// verifies the replica count is healed after every crash.
//
// `--real` replays the experiment on LIVE processes instead of the
// simulator: an in-process bitdewd (ServiceHost + wall-clock failure
// sweep), three NodeRuntime workers over loopback sockets, a
// {replica = 2, ft = true, oob = tcp} datum, one holder killed per round.
// It measures the wall-clock replica-recovery latency (kill -> survivor's
// MD5-verified re-download) as a function of the heartbeat period
// {0.5s, 1s, 2s}; `--json PATH` emits the sweep for the bench trajectory.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "rpc/server.hpp"
#include "runtime/node_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

struct DownloadEvent {
  std::string host;
  double crash_at = 0;    // when the predecessor was killed
  double started = 0;     // download start (assignment reached the host)
  double finished = 0;    // download completion
  double rate = 0;        // mean download rate
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// One live crash-recovery round at the given heartbeat period. Returns the
/// kill -> verified-re-download latency, or a negative value on failure.
double real_round(double heartbeat_s, const std::string& payload_path,
                  std::int64_t payload_bytes) {
  static util::SystemClock clock;
  services::SchedulerConfig scheduler;
  scheduler.heartbeat_period_s = heartbeat_s;
  scheduler.failure_timeout_factor = 3.0;  // the paper's detector
  services::ServiceContainer container("bitdewd", clock, scheduler);
  dht::LocalDht ddc;
  rpc::ServiceHostConfig host_config;
  host_config.loopback_only = true;
  host_config.failure_sweep_period_s = std::max(heartbeat_s / 4.0, 0.05);
  rpc::ServiceHost host(container, ddc, host_config);
  if (!host.start().ok()) return -1;

  const auto dir = std::filesystem::temp_directory_path() /
                   ("bitdew-fig4-" + std::to_string(::getpid()));
  // Every exit path (warmup/recovery failures included) reclaims the
  // worker caches; workers are declared after the guard so they stop first.
  struct DirGuard {
    std::filesystem::path dir;
    ~DirGuard() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } guard{dir};
  std::vector<std::unique_ptr<runtime::NodeRuntime>> workers;
  for (int i = 0; i < 3; ++i) {
    runtime::NodeRuntimeConfig config;
    config.name = "w" + std::to_string(i);
    config.cache_dir = (dir / config.name).string();
    std::filesystem::remove_all(config.cache_dir);
    config.heartbeat_period_s = heartbeat_s;
    workers.push_back(
        std::make_unique<runtime::NodeRuntime>("127.0.0.1", host.port(), config));
    if (!workers.back()->start().ok()) return -1;
  }

  // A client (the paper's master) registers + uploads the datum, then binds
  // {replica=2, ft=true, oob=tcp} to it.
  api::RemoteServiceBus client(std::string("127.0.0.1"), host.port());
  api::BitDew bitdew(client, "master");
  api::ActiveData active_data(client, "master");
  api::Session session(bitdew, active_data);
  const api::Expected<core::Data> data = session.put_file("replicated", payload_path);
  if (!data.ok()) return -1;
  core::DataAttributes attributes;
  attributes.replica = 2;
  attributes.fault_tolerant = true;
  attributes.protocol = "tcp";
  if (!session.schedule(*data, attributes).ok()) return -1;

  auto holders = [&] {
    int count = 0;
    for (const auto& worker : workers) {
      if (worker->running() && worker->has(data->uid)) ++count;
    }
    return count;
  };
  const auto warmup_start = std::chrono::steady_clock::now();
  while (holders() < 2 && seconds_since(warmup_start) < 30 + 10 * heartbeat_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (holders() < 2) return -2;

  // kill -9 equivalent: the victim stops heartbeating without a goodbye.
  runtime::NodeRuntime* victim = nullptr;
  runtime::NodeRuntime* survivor = nullptr;
  for (const auto& worker : workers) {
    if (worker->has(data->uid)) {
      victim = worker.get();
      break;
    }
  }
  for (const auto& worker : workers) {
    if (!worker->has(data->uid)) {
      survivor = worker.get();
      break;
    }
  }
  if (victim == nullptr || survivor == nullptr) return -2;
  const auto crash_at = std::chrono::steady_clock::now();
  victim->stop();

  // Recovery: detector timeout (3x heartbeat) + re-schedule + re-download.
  const double budget = 3 * heartbeat_s + 30;
  const bool recovered = survivor->wait_for(data->uid, budget);
  const double recovery_s = seconds_since(crash_at);

  for (auto& worker : workers) worker->stop();
  host.stop();
  if (!recovered) return -3;
  // Sanity: the survivor really holds the verified bytes.
  const core::Content replica = core::file_content(survivor->replica_path(data->uid));
  if (replica.size != payload_bytes || replica.checksum != data->checksum) return -4;
  return recovery_s;
}

int run_real(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  JsonEmitter json("fig4_fault_real", argc, argv);
  const std::int64_t payload_bytes = 4 * util::kMB;

  header("Figure 4 (live) — replica recovery on real processes (replica=2, ft=true, tcp)",
         "paper Fig. 4 over sockets: kill a worker -> 3x-heartbeat detection -> re-download");

  // A deterministic multi-chunk payload on disk.
  const std::string payload_path =
      (std::filesystem::temp_directory_path() /
       ("bitdew-fig4-payload-" + std::to_string(::getpid()) + ".bin"))
          .string();
  {
    std::string bytes(static_cast<std::size_t>(payload_bytes), '\0');
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<char>((i * 131 + 7) & 0xff);
    }
    std::ofstream(payload_path, std::ios::binary) << bytes;
  }

  std::vector<double> heartbeats = {0.5, 1.0, 2.0};
  if (full) heartbeats.push_back(4.0);

  std::printf("%-12s | %10s | %12s | %s\n", "heartbeat", "timeout(s)", "recovery(s)",
              "(detection bound = 3x heartbeat + sweep)");
  rule(72);
  bool ok = true;
  for (const double heartbeat_s : heartbeats) {
    const double recovery_s = real_round(heartbeat_s, payload_path, payload_bytes);
    if (recovery_s < 0) {
      std::printf("%-12.2f | %10.2f | %12s | FAILED (%d)\n", heartbeat_s, 3 * heartbeat_s,
                  "-", static_cast<int>(recovery_s));
      ok = false;
      continue;
    }
    std::printf("%-12.2f | %10.2f | %12.2f |\n", heartbeat_s, 3 * heartbeat_s, recovery_s);
    json.row({{"heartbeat_s", heartbeat_s},
              {"timeout_s", 3 * heartbeat_s},
              {"recovery_s", recovery_s},
              {"payload_mb", static_cast<double>(payload_bytes) / (1 << 20)}});
  }
  std::filesystem::remove(payload_path);
  std::printf("\nexpected shape (paper): recovery tracks the 3x-heartbeat detector;\n"
              "the download tail is loopback-fast here, provider-bound on DSL-Lab.\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  if (has_flag(argc, argv, "--real")) return run_real(argc, argv);
  const bool full = has_flag(argc, argv, "--full");
  const int crashes = full ? 5 : 3;
  const std::int64_t file_bytes = 5 * util::kMB;

  header("Figure 4 — fault tolerance on DSL-Lab (replica=5, ft=true, ftp)",
         "paper Fig. 4: Gantt of crash -> waiting (3x heartbeat) -> download");

  sim::Simulator sim(31);
  net::Network net(sim);
  testbed::DslLab lab = testbed::make_dsllab(net, sim.rng(), 5 + crashes + 2);

  runtime::SimRuntimeConfig config;
  config.scheduler.heartbeat_period_s = 1.0;     // paper: 1 s heartbeat
  config.scheduler.failure_timeout_factor = 3.0;  // detector at 3 s
  runtime::SimRuntime runtime(sim, net, lab.server, config);

  // Master (colocated with the service host) creates the datum.
  runtime::SimNode& master = runtime.add_node(lab.server, /*reservoir=*/false);
  const core::Content content = core::synthetic_content(3, file_bytes);
  const core::Data data = master.bitdew().create_data("replicated", content);
  master.bitdew().put(data, content);
  core::DataAttributes attributes;
  attributes.replica = 5;
  attributes.fault_tolerant = true;
  attributes.protocol = "ftp";
  master.active_data().schedule(data, attributes);

  // Start with 5 reservoirs; keep the rest in the wings.
  std::vector<runtime::SimNode*> active;
  std::size_t next_host = 0;
  std::vector<DownloadEvent> events;
  double last_crash_at = 0;

  auto watch = [&](runtime::SimNode& node) {
    struct Watcher final : core::ActiveDataEventHandler {
      runtime::SimNode* node;
      std::vector<DownloadEvent>* events;
      double* last_crash_at;
      sim::Simulator* sim;
      void on_data_copy(const core::Data&, const core::DataAttributes&) override {
        DownloadEvent event;
        event.host = node->name();
        event.crash_at = *last_crash_at;
        event.finished = sim->now();
        event.started = event.finished - node->last_download_duration();
        event.rate = node->last_download_rate();
        events->push_back(event);
      }
    };
    auto watcher = std::make_shared<Watcher>();
    watcher->node = &node;
    watcher->events = &events;
    watcher->last_crash_at = &last_crash_at;
    watcher->sim = &sim;
    node.active_data().add_callback(watcher);
  };

  for (int i = 0; i < 5; ++i) {
    runtime::SimNode& node = runtime.add_node(lab.nodes[next_host++]);
    watch(node);
    active.push_back(&node);
  }
  sim.run_until(60);  // initial replication settles

  auto holders = [&] {
    int count = 0;
    for (const auto* node : active) {
      if (net.alive(node->host()) && node->has(data.uid)) ++count;
    }
    return count;
  };
  std::printf("initial replicas after warm-up: %d/5\n\n", holders());

  // Churn: every 20 s kill one owner and admit a newcomer.
  for (int crash = 0; crash < crashes; ++crash) {
    runtime::SimNode* victim = nullptr;
    for (auto* node : active) {
      if (net.alive(node->host()) && node->has(data.uid)) {
        victim = node;
        break;
      }
    }
    if (victim == nullptr) break;
    last_crash_at = sim.now();
    runtime.kill_node(victim->host());
    runtime::SimNode& fresh = runtime.add_node(lab.nodes[next_host++]);
    watch(fresh);
    active.push_back(&fresh);
    sim.run_until(sim.now() + 20.0);
  }
  sim.run_until(sim.now() + 40.0);  // let the last recovery finish

  std::printf("%-8s | %10s | %10s | %12s | %s\n", "host", "waiting(s)", "download(s)",
              "bandwidth", "(crash -> assign -> complete)");
  rule(76);
  for (const DownloadEvent& event : events) {
    const double waiting = std::max(0.0, event.started - event.crash_at);
    std::printf("%-8s | %10.2f | %10.2f | %12s | %7.1f -> %7.1f -> %7.1f\n",
                event.host.c_str(), waiting, event.finished - event.started,
                util::human_rate(event.rate).c_str(), event.crash_at, event.started,
                event.finished);
  }
  std::printf("\nfinal live replicas: %d/5 after %d crashes\n", holders(), crashes);
  std::printf("expected shape (paper): ~3s waiting before each replacement download\n"
              "(3x 1s heartbeat detector) and strongly provider-dependent bandwidths.\n");
  return holders() == 5 ? 0 : 1;
}
