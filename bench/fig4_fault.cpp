// Figure 4: fault-tolerance scenario on DSL-Lab. A datum with
// {replica = 5, fault_tolerance = true, protocol = ftp} starts on 5 ADSL
// hosts; every 20 s one owner is killed and a fresh host joins. The paper's
// Gantt shows a ~3 s waiting time before each replacement download (the
// 3x-heartbeat failure detector) and widely varying download bandwidths
// (53-492 KB/s across providers). This bench prints the same event log and
// verifies the replica count is healed after every crash.
#include <algorithm>

#include "bench_common.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"
#include "util/bytes.hpp"

namespace {

using namespace bitdew;

struct DownloadEvent {
  std::string host;
  double crash_at = 0;    // when the predecessor was killed
  double started = 0;     // download start (assignment reached the host)
  double finished = 0;    // download completion
  double rate = 0;        // mean download rate
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bitdew::bench;
  const bool full = has_flag(argc, argv, "--full");
  const int crashes = full ? 5 : 3;
  const std::int64_t file_bytes = 5 * util::kMB;

  header("Figure 4 — fault tolerance on DSL-Lab (replica=5, ft=true, ftp)",
         "paper Fig. 4: Gantt of crash -> waiting (3x heartbeat) -> download");

  sim::Simulator sim(31);
  net::Network net(sim);
  testbed::DslLab lab = testbed::make_dsllab(net, sim.rng(), 5 + crashes + 2);

  runtime::SimRuntimeConfig config;
  config.scheduler.heartbeat_period_s = 1.0;     // paper: 1 s heartbeat
  config.scheduler.failure_timeout_factor = 3.0;  // detector at 3 s
  runtime::SimRuntime runtime(sim, net, lab.server, config);

  // Master (colocated with the service host) creates the datum.
  runtime::SimNode& master = runtime.add_node(lab.server, /*reservoir=*/false);
  const core::Content content = core::synthetic_content(3, file_bytes);
  const core::Data data = master.bitdew().create_data("replicated", content);
  master.bitdew().put(data, content);
  core::DataAttributes attributes;
  attributes.replica = 5;
  attributes.fault_tolerant = true;
  attributes.protocol = "ftp";
  master.active_data().schedule(data, attributes);

  // Start with 5 reservoirs; keep the rest in the wings.
  std::vector<runtime::SimNode*> active;
  std::size_t next_host = 0;
  std::vector<DownloadEvent> events;
  double last_crash_at = 0;

  auto watch = [&](runtime::SimNode& node) {
    struct Watcher final : core::ActiveDataEventHandler {
      runtime::SimNode* node;
      std::vector<DownloadEvent>* events;
      double* last_crash_at;
      sim::Simulator* sim;
      void on_data_copy(const core::Data&, const core::DataAttributes&) override {
        DownloadEvent event;
        event.host = node->name();
        event.crash_at = *last_crash_at;
        event.finished = sim->now();
        event.started = event.finished - node->last_download_duration();
        event.rate = node->last_download_rate();
        events->push_back(event);
      }
    };
    auto watcher = std::make_shared<Watcher>();
    watcher->node = &node;
    watcher->events = &events;
    watcher->last_crash_at = &last_crash_at;
    watcher->sim = &sim;
    node.active_data().add_callback(watcher);
  };

  for (int i = 0; i < 5; ++i) {
    runtime::SimNode& node = runtime.add_node(lab.nodes[next_host++]);
    watch(node);
    active.push_back(&node);
  }
  sim.run_until(60);  // initial replication settles

  auto holders = [&] {
    int count = 0;
    for (const auto* node : active) {
      if (net.alive(node->host()) && node->has(data.uid)) ++count;
    }
    return count;
  };
  std::printf("initial replicas after warm-up: %d/5\n\n", holders());

  // Churn: every 20 s kill one owner and admit a newcomer.
  for (int crash = 0; crash < crashes; ++crash) {
    runtime::SimNode* victim = nullptr;
    for (auto* node : active) {
      if (net.alive(node->host()) && node->has(data.uid)) {
        victim = node;
        break;
      }
    }
    if (victim == nullptr) break;
    last_crash_at = sim.now();
    runtime.kill_node(victim->host());
    runtime::SimNode& fresh = runtime.add_node(lab.nodes[next_host++]);
    watch(fresh);
    active.push_back(&fresh);
    sim.run_until(sim.now() + 20.0);
  }
  sim.run_until(sim.now() + 40.0);  // let the last recovery finish

  std::printf("%-8s | %10s | %10s | %12s | %s\n", "host", "waiting(s)", "download(s)",
              "bandwidth", "(crash -> assign -> complete)");
  rule(76);
  for (const DownloadEvent& event : events) {
    const double waiting = std::max(0.0, event.started - event.crash_at);
    std::printf("%-8s | %10.2f | %10.2f | %12s | %7.1f -> %7.1f -> %7.1f\n",
                event.host.c_str(), waiting, event.finished - event.started,
                util::human_rate(event.rate).c_str(), event.crash_at, event.started,
                event.finished);
  }
  std::printf("\nfinal live replicas: %d/5 after %d crashes\n", holders(), crashes);
  std::printf("expected shape (paper): ~3s waiting before each replacement download\n"
              "(3x 1s heartbeat detector) and strongly provider-dependent bandwidths.\n");
  return holders() == 5 ? 0 : 1;
}
