#!/usr/bin/env python3
"""Wire-invariant linter: every rpc::Endpoint member must be fully wired.

The wire protocol spreads one endpoint across five places that no compiler
cross-checks: the enum (wire.hpp), the name table (wire.cpp), the server
dispatch switch (server.cpp), a client-side codec, and the protocol docs.
The kEndpointNames static_assert catches a missing *name*, but nothing
catches a registered endpoint nobody dispatches, nobody can call, nobody
fuzzes, or nobody documented. This linter closes that gap textually:

  1. name      -- kEndpointNames (wire.cpp) holds the snake_case literal at
                  the member's wire index (kDcRegister -> "dc_register")
  2. dispatch  -- src/rpc/server.cpp has a `case Endpoint::kX:` label
  3. client    -- some client-side codec file references Endpoint::kX
  4. fuzz      -- tests/test_transport.cpp lists Endpoint::kX (the
                  kFuzzProbeEndpoints garbage-body probe table)
  5. docs      -- docs/api.md has a wire-endpoints table row for the name

Also enforced: wire values are contiguous from 0, kEndpointCount is the
last member, and the name table matches the naming convention exactly.

Exit 0 when clean; prints one line per violation and exits 1 otherwise.
`--self-test` proves the linter still bites: it injects a phantom endpoint
and asserts every per-endpoint check fails for it.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

WIRE_HPP = ROOT / "src" / "rpc" / "wire.hpp"
WIRE_CPP = ROOT / "src" / "rpc" / "wire.cpp"
SERVER_CPP = ROOT / "src" / "rpc" / "server.cpp"
FUZZ_FILE = ROOT / "tests" / "test_transport.cpp"
DOCS_FILE = ROOT / "docs" / "api.md"

# Files that may legitimately hold an endpoint's client-side codec (the
# request encoder / reply decoder a caller uses).
CLIENT_FILES = [
    ROOT / "src" / "api" / "remote_service_bus.cpp",
    ROOT / "src" / "dht" / "live_ring.cpp",
    ROOT / "src" / "services" / "ring_router.cpp",
    ROOT / "src" / "rpc" / "chunk_server.cpp",
    ROOT / "src" / "rpc" / "transport.hpp",
    ROOT / "src" / "transfer" / "chunk_source.cpp",
    ROOT / "src" / "jobs" / "task_runner.cpp",
]

SENTINEL = "kEndpointCount"


def camel_to_snake(member: str) -> str:
    """kDcAddLocator -> dc_add_locator (the wire naming convention)."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", member[1:]).lower()


def parse_enum(text: str) -> tuple[list[tuple[str, int]], list[str]]:
    """Returns ([(member, value), ...] in declaration order, errors)."""
    errors: list[str] = []
    match = re.search(r"enum class Endpoint[^{]*\{(.*?)\};", text, re.DOTALL)
    if not match:
        return [], ["wire.hpp: cannot find `enum class Endpoint`"]
    body = match.group(1)
    members = [(m.group(1), int(m.group(2)))
               for m in re.finditer(r"\b(k[A-Za-z0-9]+)\s*=\s*(\d+)", body)]
    tail = re.findall(r"\b(k[A-Za-z0-9]+)\b(?!\s*=)", body)
    if SENTINEL not in tail:
        errors.append(f"wire.hpp: enum must end with the {SENTINEL} sentinel")
    for index, (member, value) in enumerate(members):
        if value != index:
            errors.append(
                f"wire.hpp: {member} = {value}, expected {index} "
                "(wire values must be contiguous from 0)")
    return members, errors


def parse_name_table(text: str) -> list[str]:
    match = re.search(r"kEndpointNames\[\]\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if not match:
        return []
    return re.findall(r'"([a-z0-9_]+)"', match.group(1))


def lint(sources: dict[str, str]) -> list[str]:
    """Pure check over file contents; returns the violation list."""
    members, errors = parse_enum(sources["wire.hpp"])
    if not members:
        return errors or ["wire.hpp: no Endpoint members found"]

    names = parse_name_table(sources["wire.cpp"])
    client_blob = "\n".join(sources[f] for f in sources if f.startswith("client:"))

    for index, (member, _value) in enumerate(members):
        snake = camel_to_snake(member)
        ref = re.compile(rf"Endpoint::{member}\b")

        if index >= len(names):
            errors.append(f"wire.cpp: kEndpointNames has no entry for {member}")
        elif names[index] != snake:
            errors.append(
                f'wire.cpp: kEndpointNames[{index}] is "{names[index]}", '
                f'expected "{snake}" for {member}')

        if not re.search(rf"case Endpoint::{member}:", sources["server.cpp"]):
            errors.append(
                f"server.cpp: no dispatch case for {member} "
                "(ServiceHost cannot serve it)")

        if not ref.search(client_blob):
            errors.append(
                f"client codecs: no reference to {member} "
                f"(no caller can encode it; looked in "
                f"{', '.join(sorted(f[7:] for f in sources if f.startswith('client:')))})")

        if not ref.search(sources["fuzz"]):
            errors.append(
                f"tests/test_transport.cpp: {member} missing from the "
                "kFuzzProbeEndpoints garbage-body probe table")

        if not re.search(rf"\|\s*`{snake}`\s*\|", sources["docs"]):
            errors.append(
                f"docs/api.md: no wire-endpoints table row for `{snake}` "
                f"({member})")

    return errors


def load_sources() -> dict[str, str]:
    sources = {
        "wire.hpp": WIRE_HPP.read_text(),
        "wire.cpp": WIRE_CPP.read_text(),
        "server.cpp": SERVER_CPP.read_text(),
        "fuzz": FUZZ_FILE.read_text(),
        "docs": DOCS_FILE.read_text(),
    }
    for path in CLIENT_FILES:
        sources[f"client:{path.relative_to(ROOT)}"] = path.read_text()
    return sources


def self_test(sources: dict[str, str]) -> int:
    """Inject a phantom endpoint; the linter must flag all five gaps."""
    baseline = lint(sources)
    if baseline:
        print("self-test: tree must be clean first; current violations:")
        for error in baseline:
            print(f"  {error}")
        return 1

    doctored = dict(sources)
    doctored["wire.hpp"] = sources["wire.hpp"].replace(
        f"  {SENTINEL},",
        f"  kZzLintSelfTest = {len(parse_enum(sources['wire.hpp'])[0])},"
        f"\n  {SENTINEL},")
    errors = lint(doctored)
    hits = [e for e in errors if "ZzLintSelfTest" in e or "zz_lint_self_test" in e]
    expected = {"wire.cpp:", "server.cpp:", "client codecs:",
                "tests/test_transport.cpp:", "docs/api.md:"}
    seen = {prefix for prefix in expected for e in hits if e.startswith(prefix)}
    missing = expected - seen
    if missing:
        print(f"self-test FAILED: phantom endpoint not flagged by: {sorted(missing)}")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"self-test ok: phantom endpoint tripped all {len(expected)} checks")
    return 0


def main(argv: list[str]) -> int:
    sources = load_sources()
    if "--self-test" in argv:
        return self_test(sources)
    errors = lint(sources)
    if errors:
        print(f"lint_wire: {len(errors)} violation(s)")
        for error in errors:
            print(f"  {error}")
        return 1
    members, _ = parse_enum(sources["wire.hpp"])
    print(f"lint_wire: {len(members)} endpoints fully wired "
          "(name, dispatch, client codec, fuzz probe, docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
