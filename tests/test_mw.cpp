// Master/worker BLAST tests: report arithmetic, fault tolerance of tasks
// (a crashed worker's Sequence is rescheduled and the run still completes),
// end-to-end failure injection through the flaky protocol decorator, and
// post-run cleanup via the Collector cascade.
#include <gtest/gtest.h>

#include "mw/blast.hpp"
#include "testbed/topologies.hpp"

namespace bitdew {
namespace {

using mw::BlastApplication;
using mw::BlastReport;
using mw::BlastWorkerSpec;
using mw::BlastWorkload;

BlastWorkload tiny_workload(const std::string& protocol = "ftp") {
  BlastWorkload workload;
  workload.genebase_bytes = 20 * util::kMB;
  workload.application_bytes = util::kMB;
  workload.sequence_bytes = 10 * util::kKB;
  workload.unzip_Bps_per_ghz = 50e6;
  workload.exec_ghz_seconds = 10;
  workload.transfer_protocol = protocol;
  return workload;
}

struct BlastRig {
  explicit BlastRig(int workers, BlastWorkload workload,
                    runtime::SimRuntimeConfig config = mw::blast_runtime_config(),
                    std::uint64_t seed = 21)
      : sim(seed), net(sim) {
    cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", workers + 2});
    runtime = std::make_unique<runtime::SimRuntime>(sim, net, cluster.hosts[0], config);
    app = std::make_unique<BlastApplication>(*runtime, std::move(workload));
    for (int i = 2; i < workers + 2; ++i) {
      specs.push_back(BlastWorkerSpec{cluster.hosts[static_cast<std::size_t>(i)], 2.0, "gdx"});
    }
  }

  sim::Simulator sim;
  net::Network net;
  testbed::Cluster cluster;
  std::unique_ptr<runtime::SimRuntime> runtime;
  std::unique_ptr<BlastApplication> app;
  std::vector<BlastWorkerSpec> specs;
};

TEST(BlastReportMath, BreakdownAverages) {
  BlastReport report;
  report.workers.push_back({"a", "c1", 10, 2, 30, 1});
  report.workers.push_back({"b", "c1", 20, 4, 50, 2});
  report.workers.push_back({"idle", "c2", 0, 0, 0, 0});  // no tasks: excluded
  report.workers.push_back({"c", "c2", 40, 6, 70, 1});

  const auto overall = report.overall();
  EXPECT_EQ(overall.workers, 3);
  EXPECT_NEAR(overall.transfer_s, (10 + 20 + 40) / 3.0, 1e-9);
  EXPECT_NEAR(overall.exec_s, 50.0, 1e-9);

  const auto by_cluster = report.by_cluster();
  ASSERT_EQ(by_cluster.size(), 2u);
  EXPECT_EQ(by_cluster.at("c1").workers, 2);
  EXPECT_NEAR(by_cluster.at("c1").transfer_s, 15.0, 1e-9);
  EXPECT_EQ(by_cluster.at("c2").workers, 1);
  EXPECT_NEAR(by_cluster.at("c2").unzip_s, 6.0, 1e-9);
}

TEST(Blast, CompletesAndCleansUp) {
  BlastRig rig(5, tiny_workload());
  rig.app->deploy(rig.cluster.hosts[1], rig.specs, 5);
  ASSERT_TRUE(rig.app->run(5000));
  EXPECT_EQ(rig.app->report().results, 5);
  // Collector deletion cascades: only the Application (no lifetime) stays.
  rig.sim.run_until(rig.sim.now() + 20);
  EXPECT_LE(rig.runtime->container().ds().scheduled_count(), 1u);
}

TEST(Blast, EveryWorkerBreakdownIsConsistent) {
  BlastRig rig(4, tiny_workload());
  rig.app->deploy(rig.cluster.hosts[1], rig.specs, 8);  // two tasks per node
  ASSERT_TRUE(rig.app->run(5000));
  int total_tasks = 0;
  for (const auto& worker : rig.app->report().workers) {
    total_tasks += worker.tasks;
    if (worker.tasks > 0) {
      EXPECT_GT(worker.transfer_s, 0) << worker.host;
      EXPECT_GT(worker.unzip_s, 0) << worker.host;
      EXPECT_NEAR(worker.exec_s, worker.tasks * 10 / 2.0, 1e-6) << worker.host;
    }
  }
  EXPECT_EQ(total_tasks, 8);
}

TEST(Blast, WorkerCrashReschedulesItsTask) {
  BlastRig rig(6, tiny_workload());
  rig.app->deploy(rig.cluster.hosts[1], rig.specs, 6);
  // Let inputs spread, then kill one worker before it can have finished
  // (exec alone takes 5 s per task).
  rig.sim.run_until(4.0);
  rig.runtime->kill_node(rig.specs[0].host);
  // The Sequences are fault-tolerant: the dead worker's task must be
  // re-scheduled to a live node and the whole run still completes.
  ASSERT_TRUE(rig.app->run(8000));
  EXPECT_EQ(rig.app->report().results, 6);
  EXPECT_GE(rig.runtime->container().ds().stats().failures, 1u);
}

TEST(Blast, SurvivesFlakyTransfers) {
  runtime::SimRuntimeConfig config = mw::blast_runtime_config();
  config.flaky.fail_probability = 0.3;  // 30% of ftp/http transfers drop
  config.max_transfer_attempts = 6;
  BlastRig rig(4, tiny_workload(), config);
  rig.app->deploy(rig.cluster.hosts[1], rig.specs, 4);
  ASSERT_TRUE(rig.app->run(20000));
  EXPECT_EQ(rig.app->report().results, 4);
  // The DT service recorded retries/resumes for the dropped transfers.
  const auto& stats = rig.runtime->container().dt().stats();
  EXPECT_GT(stats.resumes + stats.failed, 0u);
}

TEST(Blast, RejectsCorruptedTransfersAndRetries) {
  runtime::SimRuntimeConfig config = mw::blast_runtime_config();
  config.flaky.corrupt_probability = 0.3;  // wrong checksum 30% of the time
  config.max_transfer_attempts = 6;
  BlastRig rig(4, tiny_workload(), config, 22);
  rig.app->deploy(rig.cluster.hosts[1], rig.specs, 4);
  ASSERT_TRUE(rig.app->run(20000));
  EXPECT_EQ(rig.app->report().results, 4);
  // Receiver-driven integrity checking caught the corruptions.
  EXPECT_GT(rig.runtime->container().dt().stats().checksum_rejects, 0u);
}

TEST(Blast, BitTorrentAndFtpProduceSameResults) {
  for (const char* protocol : {"ftp", "bittorrent"}) {
    BlastRig rig(5, tiny_workload(protocol));
    rig.app->deploy(rig.cluster.hosts[1], rig.specs, 5);
    ASSERT_TRUE(rig.app->run(5000)) << protocol;
    EXPECT_EQ(rig.app->report().results, 5) << protocol;
  }
}

}  // namespace
}  // namespace bitdew
