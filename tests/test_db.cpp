// DewDB tests: table CRUD and indexing, a randomized reference-model
// property test, WAL durability/compaction, both engines and the pool.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <thread>

#include "db/database.hpp"
#include "db/embedded_engine.hpp"
#include "db/engine.hpp"
#include "db/pool.hpp"
#include "db/server_engine.hpp"
#include "util/rng.hpp"

namespace bitdew {
namespace {

using db::Command;
using db::Database;
using db::Op;
using db::Response;
using db::Row;
using db::RowId;
using db::Table;
using db::TableSchema;
using db::Value;

Row make_row(std::string uid, std::string name, std::int64_t size) {
  Row row;
  row["uid"] = std::move(uid);
  row["name"] = std::move(name);
  row["size"] = size;
  return row;
}

TEST(Table, InsertGetUpdateErase) {
  Table table("data");
  table.set_primary("uid");
  const auto id = table.insert(make_row("u1", "genome", 100));
  ASSERT_TRUE(id.has_value());

  const Row* row = table.get(*id);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(db::get_text(*row, "name"), "genome");
  EXPECT_EQ(db::get_int(*row, "size"), 100);

  EXPECT_TRUE(table.update(*id, make_row("u1", "genome-v2", 200)));
  EXPECT_EQ(db::get_text(*table.get(*id), "name"), "genome-v2");

  EXPECT_TRUE(table.erase(*id));
  EXPECT_EQ(table.get(*id), nullptr);
  EXPECT_FALSE(table.erase(*id));
}

TEST(Table, PrimaryKeyConflictRejected) {
  Table table("data");
  table.set_primary("uid");
  ASSERT_TRUE(table.insert(make_row("u1", "a", 1)).has_value());
  EXPECT_FALSE(table.insert(make_row("u1", "b", 2)).has_value());
  // Missing primary column is rejected too.
  Row no_pk;
  no_pk["name"] = std::string("x");
  EXPECT_FALSE(table.insert(no_pk).has_value());
}

TEST(Table, PrimaryLookup) {
  Table table("data");
  table.set_primary("uid");
  const auto id = table.insert(make_row("u7", "x", 1));
  EXPECT_EQ(table.by_primary(Value{std::string("u7")}), id);
  EXPECT_FALSE(table.by_primary(Value{std::string("nope")}).has_value());
}

TEST(Table, UpdateCannotStealAnotherPrimary) {
  Table table("data");
  table.set_primary("uid");
  const auto a = table.insert(make_row("a", "x", 1));
  ASSERT_TRUE(table.insert(make_row("b", "y", 2)).has_value());
  EXPECT_FALSE(table.update(*a, make_row("b", "stolen", 3)));
  EXPECT_EQ(db::get_text(*table.get(*a), "uid"), "a");
}

TEST(Table, SecondaryIndexMatchesScan) {
  Table indexed("indexed");
  Table scanned("scanned");
  indexed.add_index("name");
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::string name = "n" + std::to_string(rng.below(20));
    Row row;
    row["name"] = name;
    row["i"] = static_cast<std::int64_t>(i);
    indexed.insert(row);
    scanned.insert(row);
  }
  for (int k = 0; k < 20; ++k) {
    const Value needle{std::string("n" + std::to_string(k))};
    EXPECT_EQ(indexed.find("name", needle), scanned.find("name", needle)) << "key n" << k;
  }
}

TEST(Table, IndexBuiltOnPopulatedTable) {
  Table table("t");
  Row row;
  row["kind"] = std::string("x");
  table.insert(row);
  table.insert(row);
  table.add_index("kind");
  EXPECT_TRUE(table.has_index("kind"));
  EXPECT_EQ(table.find("kind", Value{std::string("x")}).size(), 2u);
}

TEST(Table, IndexKeysAreTypeTagged) {
  Table table("t");
  table.add_index("v");
  Row as_int;
  as_int["v"] = std::int64_t{1};
  Row as_text;
  as_text["v"] = std::string("1");
  table.insert(as_int);
  table.insert(as_text);
  EXPECT_EQ(table.find("v", Value{std::int64_t{1}}).size(), 1u);
  EXPECT_EQ(table.find("v", Value{std::string("1")}).size(), 1u);
}

TEST(Table, PatchMergesColumns) {
  Table table("t");
  const auto id = table.insert(make_row("u", "name", 5));
  Row patch;
  patch["size"] = std::int64_t{99};
  EXPECT_TRUE(table.patch(*id, patch));
  EXPECT_EQ(db::get_int(*table.get(*id), "size"), 99);
  EXPECT_EQ(db::get_text(*table.get(*id), "name"), "name");  // untouched
}

// Property: random op sequences agree with a std::map reference model.
class TableReferenceModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableReferenceModel, AgreesWithStdMap) {
  util::Rng rng(GetParam());
  Table table("t");
  table.add_index("key");
  std::map<RowId, Row> model;
  std::vector<RowId> live;

  for (int step = 0; step < 2000; ++step) {
    const auto action = rng.below(10);
    if (action < 4 || live.empty()) {  // insert
      Row row;
      row["key"] = std::string("k" + std::to_string(rng.below(25)));
      row["step"] = static_cast<std::int64_t>(step);
      const auto id = table.insert(row);
      ASSERT_TRUE(id.has_value());
      model[*id] = row;
      live.push_back(*id);
    } else if (action < 6) {  // update
      const RowId id = live[rng.below(live.size())];
      Row row;
      row["key"] = std::string("k" + std::to_string(rng.below(25)));
      row["step"] = static_cast<std::int64_t>(-step);
      ASSERT_TRUE(table.update(id, row));
      model[id] = row;
    } else if (action < 8) {  // erase
      const std::size_t at = rng.below(live.size());
      const RowId id = live[at];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      EXPECT_TRUE(table.erase(id));
      model.erase(id);
    } else {  // find and compare against model scan
      const Value needle{std::string("k" + std::to_string(rng.below(25)))};
      std::vector<RowId> expected;
      for (const auto& [id, row] : model) {
        if (db::index_key(row.at("key")) == db::index_key(needle)) expected.push_back(id);
      }
      EXPECT_EQ(table.find("key", needle), expected);
    }
  }
  EXPECT_EQ(table.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableReferenceModel, ::testing::Values(1, 2, 3, 4, 5));

// --- Database + WAL -----------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("bitdew-wal-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(WalTest, SurvivesReopen) {
  RowId kept = 0;
  {
    Database database(path_.string());
    database.create_table(TableSchema{"data", "uid", {"name"}});
    kept = *database.insert("data", make_row("u1", "alpha", 1));
    const RowId gone = *database.insert("data", make_row("u2", "beta", 2));
    database.erase("data", gone);
    database.patch("data", kept, Row{{"size", std::int64_t{42}}});
  }
  Database database(path_.string());
  const Row* row = database.get("data", kept);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(db::get_text(*row, "name"), "alpha");
  EXPECT_EQ(db::get_int(*row, "size"), 42);
  EXPECT_EQ(database.table("data")->size(), 1u);
  // Schema survived: primary enforced, index present.
  EXPECT_FALSE(database.insert("data", make_row("u1", "dup", 9)).has_value());
  EXPECT_TRUE(database.table("data")->has_index("name"));
}

TEST_F(WalTest, CompactionPreservesContentAndSchema) {
  {
    Database database(path_.string());
    database.create_table(TableSchema{"data", "uid", {"name"}});
    for (int i = 0; i < 50; ++i) {
      database.insert("data", make_row("u" + std::to_string(i), "n", i));
    }
    for (int i = 0; i < 25; ++i) {
      const auto ids = database.find("data", "uid", Value{std::string("u" + std::to_string(i))});
      ASSERT_EQ(ids.size(), 1u);
      database.erase("data", ids[0]);
    }
    const auto before = std::filesystem::file_size(path_);
    database.compact();
    EXPECT_LT(std::filesystem::file_size(path_), before);
  }
  Database database(path_.string());
  EXPECT_EQ(database.table("data")->size(), 25u);
  EXPECT_FALSE(database.insert("data", make_row("u30", "dup", 0)).has_value());
  EXPECT_TRUE(database.table("data")->has_index("name"));
}

TEST_F(WalTest, AutoCompactBoundsWalGrowth) {
  {
    Database database(path_.string());
    database.set_auto_compact(4096);
    database.create_table(TableSchema{"data", "uid", {}});
    // One hot row updated thousands of times: without auto-compaction the
    // log would grow with history; with it, the WAL tracks live state.
    const RowId id = *database.insert("data", make_row("hot", "n", 0));
    for (int i = 0; i < 2000; ++i) {
      database.update("data", id, make_row("hot", "n", i));
    }
    EXPECT_GT(database.compactions(), 0u);
    EXPECT_LT(database.wal_bytes(), 4096u + 512u);  // threshold + one snapshot worth
    EXPECT_LT(std::filesystem::file_size(path_), 4096u + 512u);
  }
  // The compacted log still recovers the final state.
  Database database(path_.string());
  ASSERT_EQ(database.table("data")->size(), 1u);
  const auto ids = database.find("data", "uid", Value{std::string("hot")});
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(db::get_int(*database.get("data", ids[0]), "size"), 1999);
}

TEST_F(WalTest, TornTailRecordIsIgnored) {
  {
    Database database(path_.string());
    database.create_table(TableSchema{"data", "uid", {}});
    database.insert("data", make_row("u1", "a", 1));
  }
  // Append garbage simulating a torn write.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    const std::uint32_t bogus_len = 1 << 20;
    out.write(reinterpret_cast<const char*>(&bogus_len), sizeof(bogus_len));
    out.write("partial", 7);
  }
  Database database(path_.string());
  EXPECT_EQ(database.table("data")->size(), 1u);
}

TEST(Database, InMemoryHasNoWal) {
  Database database;
  database.create_table(TableSchema{"t", "", {}});
  EXPECT_FALSE(database.durable());
  EXPECT_TRUE(database.insert("t", Row{{"x", std::int64_t{1}}}).has_value());
}

TEST(Database, StatsCount) {
  Database database;
  database.create_table(TableSchema{"t", "", {}});
  const auto id = *database.insert("t", Row{{"x", std::int64_t{1}}});
  database.get("t", id);
  database.find("t", "x", Value{std::int64_t{1}});
  database.erase("t", id);
  EXPECT_EQ(database.stats().inserts, 1u);
  EXPECT_EQ(database.stats().reads, 1u);
  EXPECT_EQ(database.stats().finds, 1u);
  EXPECT_EQ(database.stats().erases, 1u);
}

// --- engines ---------------------------------------------------------------

Command insert_command(std::string uid) {
  Command command;
  command.op = Op::kInsert;
  command.table = "data";
  command.row = make_row(std::move(uid), "n", 1);
  return command;
}

TEST(EmbeddedEngine, ExecutesCommands) {
  Database database;
  database.create_table(TableSchema{"data", "uid", {}});
  db::EmbeddedEngine engine(database);
  const auto connection = engine.connect();

  const Response ins = connection->execute(insert_command("u1"));
  EXPECT_TRUE(ins.ok);
  EXPECT_NE(ins.id, 0u);

  Command get;
  get.op = Op::kGet;
  get.table = "data";
  get.id = ins.id;
  const Response got = connection->execute(get);
  ASSERT_TRUE(got.ok);
  ASSERT_EQ(got.rows.size(), 1u);
  EXPECT_EQ(db::get_text(got.rows[0].row, "uid"), "u1");
}

TEST(ServerEngine, ExecutesCommandsOverTheWire) {
  Database database;
  database.create_table(TableSchema{"data", "uid", {"name"}});
  db::ServerEngine engine(database);
  const auto connection = engine.connect();

  const Response ins = connection->execute(insert_command("u1"));
  EXPECT_TRUE(ins.ok);

  Command find;
  find.op = Op::kFind;
  find.table = "data";
  find.column = "name";
  find.value = std::string("n");
  const Response found = connection->execute(find);
  ASSERT_TRUE(found.ok);
  EXPECT_EQ(found.rows.size(), 1u);

  Command erase;
  erase.op = Op::kErase;
  erase.table = "data";
  erase.id = ins.id;
  EXPECT_TRUE(connection->execute(erase).ok);
  EXPECT_FALSE(connection->execute(erase).ok);  // already gone
}

TEST(ServerEngine, ManyConcurrentClients) {
  Database database;
  database.create_table(TableSchema{"data", "uid", {}});
  db::ServerEngine engine(database);

  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &failures, t] {
      const auto connection = engine.connect();
      for (int i = 0; i < kOps; ++i) {
        const Response r =
            connection->execute(insert_command("t" + std::to_string(t) + "-" + std::to_string(i)));
        if (!r.ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(database.table("data")->size(), static_cast<std::size_t>(kThreads) * kOps);
}

TEST(ServerEngine, DuplicatePrimaryReportsError) {
  Database database;
  database.create_table(TableSchema{"data", "uid", {}});
  db::ServerEngine engine(database);
  const auto connection = engine.connect();
  EXPECT_TRUE(connection->execute(insert_command("dup")).ok);
  const Response second = connection->execute(insert_command("dup"));
  EXPECT_FALSE(second.ok);
  EXPECT_FALSE(second.error.empty());
}

TEST(ConnectionPool, ReusesConnections) {
  Database database;
  database.create_table(TableSchema{"data", "uid", {}});
  db::EmbeddedEngine engine(database);
  db::ConnectionPool pool(engine, 2);
  for (int i = 0; i < 100; ++i) {
    auto lease = pool.acquire();
    EXPECT_TRUE(lease->execute(insert_command("u" + std::to_string(i))).ok);
  }
  EXPECT_LE(engine.connections_opened(), 2u);
}

TEST(ConnectionPool, BlocksAtCapacityUntilRelease) {
  Database database;
  database.create_table(TableSchema{"data", "uid", {}});
  db::EmbeddedEngine engine(database);
  db::ConnectionPool pool(engine, 1);

  auto first = pool.acquire();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto second = pool.acquire();
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  { auto release = std::move(first); }  // return to pool
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(engine.connections_opened(), 1u);
}

TEST(ConnectionPool, WorksWithServerEngine) {
  Database database;
  database.create_table(TableSchema{"data", "uid", {}});
  db::ServerEngine engine(database);
  db::ConnectionPool pool(engine, 3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 50; ++i) {
        auto lease = pool.acquire();
        lease->execute(insert_command("p" + std::to_string(t) + "-" + std::to_string(i)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(database.table("data")->size(), 300u);
  EXPECT_LE(engine.connections_opened(), 3u);
}

}  // namespace
}  // namespace bitdew
