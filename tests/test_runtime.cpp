// Integration tests: the full simulated deployment — services + scheduler +
// protocols + API — exercising the paper's scenarios end to end
// (replication, broadcast, affinity, fault recovery, lifetime cascade, the
// Updater pattern and a miniature BLAST run).
#include <gtest/gtest.h>

#include "mw/blast.hpp"
#include "runtime/sim_runtime.hpp"
#include "testbed/topologies.hpp"

namespace bitdew {
namespace {

using runtime::SimNode;
using runtime::SimRuntime;
using runtime::SimRuntimeConfig;

struct Rig {
  explicit Rig(int nodes, std::uint64_t seed = 3)
      : sim(seed), net(sim) {
    cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", nodes + 1});
    runtime = std::make_unique<SimRuntime>(sim, net, cluster.hosts[0]);
    for (int i = 1; i <= nodes; ++i) {
      nodes_.push_back(&runtime->add_node(cluster.hosts[static_cast<std::size_t>(i)]));
    }
  }

  core::Data make_scheduled(const std::string& name, std::int64_t size,
                            const core::DataAttributes& attributes) {
    SimNode& origin = *nodes_[0];
    const core::Content content = core::synthetic_content(42, size);
    const core::Data data = origin.bitdew().create_data(name, content);
    origin.bitdew().put(data, content);
    origin.active_data().schedule(data, attributes);
    return data;
  }

  int holders(const core::Data& data) const {
    int count = 0;
    for (const SimNode* node : nodes_) count += node->has(data.uid) ? 1 : 0;
    return count;
  }

  void run_for(double seconds) { sim.run_until(sim.now() + seconds); }

  sim::Simulator sim;
  net::Network net;
  testbed::Cluster cluster;
  std::unique_ptr<SimRuntime> runtime;
  std::vector<SimNode*> nodes_;
};

TEST(SimIntegration, ReplicaRuleMaterializesCopies) {
  Rig rig(6);
  core::DataAttributes attributes;
  attributes.replica = 3;
  const core::Data data = rig.make_scheduled("payload", 5 * util::kMB, attributes);
  rig.run_for(30);
  EXPECT_EQ(rig.holders(data), 3);
  EXPECT_EQ(rig.runtime->container().ds().owners(data.uid).size(), 3u);
}

TEST(SimIntegration, BroadcastReachesEveryNode) {
  Rig rig(8);
  core::DataAttributes attributes;
  attributes.replica = core::kReplicaAll;
  const core::Data data = rig.make_scheduled("everywhere", util::kMB, attributes);
  rig.run_for(30);
  EXPECT_EQ(rig.holders(data), 8);
}

TEST(SimIntegration, TransfersVerifyChecksumsThroughDt) {
  Rig rig(3);
  core::DataAttributes attributes;
  attributes.replica = 2;
  // Big enough that the transfer outlives the 500 ms DT monitoring period.
  const core::Data data = rig.make_scheduled("verified", 200 * util::kMB, attributes);
  rig.run_for(60);
  const auto& dt_stats = rig.runtime->container().dt().stats();
  EXPECT_GE(dt_stats.completed, 2u);
  EXPECT_EQ(dt_stats.checksum_rejects, 0u);
  EXPECT_GT(dt_stats.monitor_polls, 0u);  // receiver-driven monitoring ran
  EXPECT_EQ(rig.holders(data), 2);
}

TEST(SimIntegration, AffinityPlacesDependentsTogether) {
  Rig rig(6);
  core::DataAttributes anchor_attr;
  anchor_attr.replica = 2;
  const core::Data anchor = rig.make_scheduled("anchor", util::kMB, anchor_attr);
  rig.run_for(20);

  core::DataAttributes follower_attr;
  follower_attr.replica = 0;
  follower_attr.affinity = anchor.uid;
  const core::Data follower = rig.make_scheduled("follower", util::kMB, follower_attr);
  rig.run_for(30);

  EXPECT_EQ(rig.holders(follower), 2);
  for (const SimNode* node : rig.nodes_) {
    EXPECT_EQ(node->has(follower.uid), node->has(anchor.uid)) << node->name();
  }
}

TEST(SimIntegration, FaultTolerantDataRecoversAfterCrash) {
  Rig rig(5);
  core::DataAttributes attributes;
  attributes.replica = 1;
  attributes.fault_tolerant = true;
  const core::Data data = rig.make_scheduled("precious", 2 * util::kMB, attributes);
  rig.run_for(20);
  ASSERT_EQ(rig.holders(data), 1);

  SimNode* owner = nullptr;
  for (SimNode* node : rig.nodes_) {
    if (node->has(data.uid)) owner = node;
  }
  ASSERT_NE(owner, nullptr);
  rig.runtime->kill_node(owner->host());
  // 3x heartbeat timeout + resync + download: well within 30 s.
  rig.run_for(30);
  int live_holders = 0;
  for (const SimNode* node : rig.nodes_) {
    if (node != owner && node->has(data.uid)) ++live_holders;
  }
  EXPECT_EQ(live_holders, 1);
}

TEST(SimIntegration, NonFaultTolerantDataStaysLost) {
  Rig rig(5);
  core::DataAttributes attributes;
  attributes.replica = 1;
  attributes.fault_tolerant = false;
  const core::Data data = rig.make_scheduled("fragile", 2 * util::kMB, attributes);
  rig.run_for(20);
  SimNode* owner = nullptr;
  for (SimNode* node : rig.nodes_) {
    if (node->has(data.uid)) owner = node;
  }
  ASSERT_NE(owner, nullptr);
  rig.runtime->kill_node(owner->host());
  rig.run_for(30);
  int live_holders = 0;
  for (const SimNode* node : rig.nodes_) {
    if (node != owner && node->has(data.uid)) ++live_holders;
  }
  EXPECT_EQ(live_holders, 0);
}

TEST(SimIntegration, AbsoluteLifetimeExpiresAndDeletes) {
  Rig rig(3);
  core::DataAttributes attributes;
  attributes.replica = 2;
  attributes.lifetime = core::Lifetime::absolute(15.0);
  const core::Data data = rig.make_scheduled("mortal", util::kMB, attributes);
  rig.run_for(10);
  EXPECT_EQ(rig.holders(data), 2);
  rig.run_for(10);  // now past 15 s
  EXPECT_EQ(rig.holders(data), 0);
}

TEST(SimIntegration, CollectorDeletionCascades) {
  Rig rig(4);
  SimNode& origin = *rig.nodes_[0];
  const core::Data collector = origin.bitdew().create_data("Collector");
  origin.adopt_local(collector);
  core::DataAttributes collector_attr;
  collector_attr.replica = 0;
  origin.active_data().pin(collector, collector_attr);

  core::DataAttributes dependent_attr;
  dependent_attr.replica = 2;
  dependent_attr.lifetime = core::Lifetime::relative(collector.uid);
  const core::Data dependent = rig.make_scheduled("dependent", util::kMB, dependent_attr);
  rig.run_for(20);
  EXPECT_EQ(rig.holders(dependent), 2);

  origin.bitdew().remove(collector);
  rig.run_for(10);
  EXPECT_EQ(rig.holders(dependent), 0);
}

TEST(SimIntegration, EventsFireOnCopyAndDelete) {
  Rig rig(2);

  struct Recorder final : core::ActiveDataEventHandler {
    int copies = 0;
    int deletes = 0;
    void on_data_copy(const core::Data&, const core::DataAttributes&) override { ++copies; }
    void on_data_delete(const core::Data&, const core::DataAttributes&) override { ++deletes; }
  };
  auto recorder = std::make_shared<Recorder>();
  rig.nodes_[1]->active_data().add_callback(recorder);

  core::DataAttributes attributes;
  attributes.replica = core::kReplicaAll;
  attributes.lifetime = core::Lifetime::absolute(12.0);
  rig.make_scheduled("observed", util::kMB, attributes);
  rig.run_for(30);
  EXPECT_EQ(recorder->copies, 1);
  EXPECT_EQ(recorder->deletes, 1);
}

TEST(SimIntegration, DdcPublishesReplicaLocations) {
  Rig rig(5);
  std::vector<net::HostId> ring_hosts;
  for (const SimNode* node : rig.nodes_) ring_hosts.push_back(node->host());
  rig.runtime->enable_ddc(ring_hosts);

  core::DataAttributes attributes;
  attributes.replica = 2;
  const core::Data data = rig.make_scheduled("published", util::kMB, attributes);
  rig.run_for(30);

  std::vector<std::string> locations;
  rig.nodes_[0]->bitdew().lookup(data.uid.str(),
                                 [&](api::Expected<std::vector<std::string>> v) {
                                   if (v.ok()) locations = *v;
                                 });
  rig.run_for(10);
  EXPECT_EQ(locations.size(), 2u);
}

TEST(SimIntegration, TransferManagerObservesDownloads) {
  Rig rig(2);
  core::DataAttributes attributes;
  attributes.replica = core::kReplicaAll;
  const core::Data data = rig.make_scheduled("tracked", 5 * util::kMB, attributes);

  bool completed = false;
  rig.nodes_[1]->transfer_manager().when_done(
      data.uid, [&](api::Status outcome) { completed = outcome.ok(); });
  rig.run_for(30);
  EXPECT_TRUE(completed);
  EXPECT_EQ(rig.nodes_[1]->transfer_manager().probe(data.uid), api::TransferProbe::kDone);
}

// The paper's Updater application (Listings 1-2), miniaturized: a file is
// broadcast; every updatee reports back by scheduling a "host" datum with
// affinity to a collector pinned on the updater.
TEST(SimIntegration, UpdaterScenarioCollectsAcknowledgements) {
  Rig rig(5);
  SimNode& updater = *rig.nodes_[0];

  const core::Data collector = updater.bitdew().create_data("collector");
  updater.adopt_local(collector);
  core::DataAttributes collector_attr;
  collector_attr.replica = 0;
  updater.active_data().pin(collector, collector_attr);

  struct UpdaterHandler final : core::ActiveDataEventHandler {
    int acks = 0;
    void on_data_copy(const core::Data&, const core::DataAttributes& attr) override {
      if (attr.name == "host") ++acks;
    }
  };
  auto master_handler = std::make_shared<UpdaterHandler>();
  updater.active_data().add_callback(master_handler);

  struct UpdateeHandler final : core::ActiveDataEventHandler {
    SimNode* node;
    core::Data collector;
    explicit UpdateeHandler(SimNode* n, core::Data c) : node(n), collector(std::move(c)) {}
    void on_data_copy(const core::Data& data, const core::DataAttributes& attr) override {
      if (attr.name != "update") return;
      (void)data;
      // Report our host name back through the data space.
      const core::Data ack =
          node->bitdew().create_data("host:" + node->name(), core::Content{0, "-"});
      node->adopt_local(ack);
      core::DataAttributes ack_attr;
      ack_attr.name = "host";
      ack_attr.replica = 0;
      ack_attr.affinity = collector.uid;
      node->active_data().schedule(ack, ack_attr);
    }
  };
  for (std::size_t i = 1; i < rig.nodes_.size(); ++i) {
    rig.nodes_[i]->active_data().add_callback(
        std::make_shared<UpdateeHandler>(rig.nodes_[i], collector));
  }

  core::DataAttributes update_attr;
  update_attr.name = "update";
  update_attr.replica = core::kReplicaAll;
  update_attr.protocol = "ftp";
  rig.make_scheduled("big_update", 10 * util::kMB, update_attr);

  rig.run_for(60);
  EXPECT_EQ(master_handler->acks, 4);  // all updatees except the updater
}

TEST(SimIntegration, MiniatureBlastCompletesOnBothProtocols) {
  for (const std::string protocol : {"ftp", "bittorrent"}) {
    sim::Simulator sim(9);
    net::Network net(sim);
    const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", 8});
    SimRuntime runtime(sim, net, cluster.hosts[0], mw::blast_runtime_config());

    mw::BlastWorkload workload;
    workload.genebase_bytes = 50 * util::kMB;  // miniature
    workload.application_bytes = util::kMB;
    workload.unzip_Bps_per_ghz = 50e6;
    workload.exec_ghz_seconds = 10;
    workload.transfer_protocol = protocol;

    mw::BlastApplication app(runtime, workload);
    std::vector<mw::BlastWorkerSpec> workers;
    for (int i = 2; i < 8; ++i) {
      workers.push_back(mw::BlastWorkerSpec{cluster.hosts[static_cast<std::size_t>(i)], 2.0,
                                            "gdx"});
    }
    app.deploy(cluster.hosts[1], workers, 6);
    ASSERT_TRUE(app.run(3000)) << protocol;
    EXPECT_EQ(app.report().results, 6) << protocol;
    EXPECT_GT(app.report().total_time_s, 0) << protocol;
    const auto breakdown = app.report().overall();
    EXPECT_GT(breakdown.transfer_s, 0) << protocol;
    EXPECT_GT(breakdown.unzip_s, 0) << protocol;
    EXPECT_GT(breakdown.exec_s, 0) << protocol;
  }
}

}  // namespace
}  // namespace bitdew
