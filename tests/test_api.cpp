// ServiceBus v2 tests: the typed Expected<T> error channel (distinct
// Error::codes for duplicate registration, unknown uids, scheduler
// rejection, checksum mismatch), the bulk endpoints (batch-of-1 scalar
// equivalence, partial failure, empty-batch no-op) and the blocking Session
// facade — all through EVERY implementation: the synchronous
// DirectServiceBus, the discrete-event SimServiceBus, and the networked
// RemoteServiceBus (a loopback ServiceHost, i.e. an in-process bitdewd).
// The remote rig also covers the failure contract: killing the host makes
// calls fail Errc::kTransport within the deadline instead of hanging.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>

#include "api/direct_service_bus.hpp"
#include "api/remote_service_bus.hpp"
#include "api/session.hpp"
#include "rpc/server.hpp"
#include "runtime/sim_service_bus.hpp"
#include "testbed/topologies.hpp"

namespace bitdew {
namespace {

using api::BatchStatus;
using api::Errc;
using api::Expected;
using api::Status;

core::Data make_data(const std::string& name, std::int64_t size = 1000) {
  core::Data data;
  data.uid = util::next_auid();
  data.name = name;
  data.size = size;
  data.checksum = core::synthetic_content(data.uid.lo, size).checksum;
  return data;
}

core::DataAttributes attr(int replica) {
  core::DataAttributes attributes;
  attributes.replica = replica;
  return attributes;
}

/// A full-report sync beat (the retired positional overload, spelled as the
/// one SyncRequest entry point).
services::SyncRequest full_sync(const std::string& host, std::vector<util::Auid> cache,
                                const std::string& endpoint = "") {
  services::SyncRequest request;
  request.host = host;
  request.full = true;
  request.added = std::move(cache);
  request.endpoint = endpoint;
  return request;
}

/// The synchronous rig: replies resolve before the call returns.
struct DirectRig {
  DirectRig() : container("server", clock), bus(container, ddc) {}

  void settle() {}
  std::uint64_t traffic() const { return bus.call_count(); }
  api::Session::Pump pump() { return nullptr; }

  util::ManualClock clock;
  services::ServiceContainer container;
  dht::LocalDht ddc;
  api::DirectServiceBus bus;
};

/// The discrete-event rig: every call crosses the simulated network and the
/// FIFO service queue; settle() drains the event queue.
struct SimRig {
  SimRig()
      : net(sim),
        cluster(testbed::make_cluster(net, testbed::ClusterSpec{"gdx", 2})),
        container(net.host_name(cluster.hosts[0]), sim),
        queue(sim, 500e-6),
        bus(sim, net, cluster.hosts[1], cluster.hosts[0], container, queue, ddc,
            runtime::BusConfig{}) {}

  void settle() { sim.run(); }
  std::uint64_t traffic() const { return bus.rpc_count(); }
  api::Session::Pump pump() {
    return [this] { return sim.step(); };
  }

  sim::Simulator sim{5};
  net::Network net;
  testbed::Cluster cluster;
  services::ServiceContainer container;
  runtime::ServiceQueue queue;
  dht::LocalDht ddc;
  runtime::SimServiceBus bus;
};

/// The networked rig: a loopback ServiceHost (bitdewd-equivalent) on an
/// ephemeral port, driven through RemoteServiceBus over real TCP. Replies
/// resolve synchronously like the direct bus, so settle() is a no-op.
struct RemoteRig {
  RemoteRig()
      : container("server", clock),
        host(container, ddc, rpc::ServiceHostConfig{0, /*loopback_only=*/true, -1}),
        bus("127.0.0.1", start_host(), api::RemoteBusConfig{1.0, 2.0}) {}

  std::uint16_t start_host() {
    const api::Status started = host.start();
    if (!started.ok()) throw std::runtime_error(started.error().to_string());
    return host.port();
  }

  void settle() {}
  std::uint64_t traffic() const { return bus.rpc_count(); }
  api::Session::Pump pump() { return nullptr; }

  util::ManualClock clock;
  services::ServiceContainer container;
  dht::LocalDht ddc;
  rpc::ServiceHost host;
  api::RemoteServiceBus bus;
};

template <typename T>
std::optional<T> capture(std::optional<T>& slot) {
  return slot;
}

// --- the typed error channel ------------------------------------------------

template <typename Rig>
void check_error_codes() {
  Rig rig;
  const core::Data data = make_data("genome");

  // Concurrent RPCs may overtake each other on the simulated network, so
  // assert the pair of outcomes, not their order: exactly one registration
  // wins and the other reports kDuplicate.
  std::optional<Status> first;
  std::optional<Status> second;
  rig.bus.dc_register(data, [&](Status s) { first = s; });
  rig.bus.dc_register(data, [&](Status s) { second = s; });
  rig.settle();
  ASSERT_TRUE(first.has_value() && second.has_value());
  const Status& winner = first->ok() ? *first : *second;
  const Status& loser = first->ok() ? *second : *first;
  EXPECT_TRUE(winner.ok());
  EXPECT_EQ(loser.code(), Errc::kDuplicate);
  EXPECT_EQ(loser.error().service, "dc");

  // Unknown-uid locate is kNotFound — distinct from a registered datum
  // that merely has no locators yet (ok + empty).
  std::optional<Expected<std::vector<core::Locator>>> unknown;
  std::optional<Expected<std::vector<core::Locator>>> empty;
  rig.bus.dc_locators(util::next_auid(), [&](auto v) { unknown = v; });
  rig.bus.dc_locators(data.uid, [&](auto v) { empty = v; });
  rig.settle();
  ASSERT_TRUE(unknown.has_value() && empty.has_value());
  EXPECT_EQ(unknown->code(), Errc::kNotFound);
  ASSERT_TRUE(empty->ok());
  EXPECT_TRUE((*empty)->empty());

  // Scheduler rejection: invalid replica count and self-affinity.
  std::optional<Status> rejected;
  std::optional<Status> self_affine;
  rig.bus.ds_schedule(data, attr(-5), [&](Status s) { rejected = s; });
  core::DataAttributes loop_attr = attr(1);
  loop_attr.affinity = data.uid;
  rig.bus.ds_schedule(data, loop_attr, [&](Status s) { self_affine = s; });
  rig.settle();
  EXPECT_EQ(rejected->code(), Errc::kRejected);
  EXPECT_EQ(rejected->error().service, "ds");
  EXPECT_EQ(self_affine->code(), Errc::kRejected);
  EXPECT_EQ(rig.container.ds().scheduled_count(), 0u);

  // Pinning an unscheduled datum is kNotFound.
  std::optional<Status> pin;
  rig.bus.ds_pin(data.uid, "host", [&](Status s) { pin = s; });
  rig.settle();
  EXPECT_EQ(pin->code(), Errc::kNotFound);

  // DT checksum verification failure is kChecksumMismatch.
  std::optional<Expected<services::TicketId>> ticket;
  rig.bus.dt_register(data, "server", "worker", "ftp", [&](auto t) { ticket = t; });
  rig.settle();
  ASSERT_TRUE(ticket.has_value() && ticket->ok());
  std::optional<Status> verify;
  rig.bus.dt_complete(ticket->value(), "badbadbad", data.checksum,
                      [&](Status s) { verify = s; });
  rig.settle();
  EXPECT_EQ(verify->code(), Errc::kChecksumMismatch);
  EXPECT_EQ(verify->error().service, "dt");
}

TEST(ErrorChannel, DirectBusSurfacesDistinctCodes) { check_error_codes<DirectRig>(); }
TEST(ErrorChannel, SimBusSurfacesDistinctCodes) { check_error_codes<SimRig>(); }
TEST(ErrorChannel, RemoteBusSurfacesDistinctCodes) { check_error_codes<RemoteRig>(); }

// --- the failure detector's host table ---------------------------------------

template <typename Rig>
void check_ds_hosts() {
  Rig rig;
  std::optional<api::Expected<std::vector<services::HostInfo>>> empty;
  rig.bus.ds_hosts(
      [&](api::Expected<std::vector<services::HostInfo>> reply) { empty = std::move(reply); });
  rig.settle();
  ASSERT_TRUE(empty.has_value());
  ASSERT_TRUE(empty->ok());
  EXPECT_TRUE((*empty)->empty());  // no worker has ever synced

  std::optional<api::Expected<services::SyncReply>> synced;
  rig.bus.ds_sync(full_sync("w1", {}, "10.0.0.7:9000"),
                  [&](api::Expected<services::SyncReply> reply) { synced = std::move(reply); });
  rig.settle();
  ASSERT_TRUE(synced.has_value());
  ASSERT_TRUE(synced->ok());

  std::optional<api::Expected<std::vector<services::HostInfo>>> table;
  rig.bus.ds_hosts(
      [&](api::Expected<std::vector<services::HostInfo>> reply) { table = std::move(reply); });
  rig.settle();
  ASSERT_TRUE(table.has_value());
  ASSERT_TRUE(table->ok());
  ASSERT_EQ((*table)->size(), 1u);
  EXPECT_EQ((**table)[0].name, "w1");
  EXPECT_TRUE((**table)[0].alive);
  EXPECT_EQ((**table)[0].cached, 0u);
  // The announced chunk-server endpoint survives the round trip on every bus.
  EXPECT_EQ((**table)[0].endpoint, "10.0.0.7:9000");
}

TEST(HostTable, DirectBusServesIt) { check_ds_hosts<DirectRig>(); }
TEST(HostTable, SimBusServesIt) { check_ds_hosts<SimRig>(); }
TEST(HostTable, RemoteBusServesIt) { check_ds_hosts<RemoteRig>(); }

// --- the job endpoints -------------------------------------------------------

/// The whole compute-to-data lifecycle over one bus: submit → the task datum
/// reaches the input's holder via ds_sync → claim race → report → status
/// complete — plus the typed rejections at each step.
template <typename Rig>
void check_job_endpoints() {
  Rig rig;
  const core::Data input = make_data("chunk");
  const core::Data token = make_data("collector", 0);
  std::optional<Status> status_reply;
  rig.bus.dc_register(input, [&](Status s) { status_reply = s; });
  rig.bus.dc_register(token, [&](Status) {});
  core::DataAttributes replicated = attr(1);
  replicated.fault_tolerant = true;
  rig.bus.ds_schedule(input, replicated, [&](Status) {});
  rig.bus.ds_schedule(token, attr(0), [&](Status) {});
  rig.settle();
  rig.bus.ds_pin(token.uid, "coll", [&](Status s) { status_reply = s; });
  rig.settle();
  ASSERT_TRUE(status_reply.has_value() && status_reply->ok());

  // w1 acquires and confirms the input; the collector holds its token.
  rig.bus.ds_sync(full_sync("w1", {}), [&](auto) {});
  rig.bus.ds_sync(full_sync("w1", {input.uid}), [&](auto) {});
  rig.bus.ds_sync(full_sync("coll", {token.uid}), [&](auto) {});
  rig.settle();

  // A spec with no inputs is a typed rejection, not a hang or a crash.
  jobs::JobSpec bad;
  bad.uid = util::next_auid();
  bad.argv = {"/bin/true"};
  bad.collector = token.uid;
  std::optional<Expected<util::Auid>> rejected;
  rig.bus.job_submit(bad, [&](Expected<util::Auid> r) { rejected = std::move(r); });
  rig.settle();
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->code(), Errc::kInvalidArgument);
  EXPECT_EQ(rejected->error().service, "jobs");

  jobs::JobSpec spec = bad;
  spec.uid = util::next_auid();
  spec.name = "grep";
  spec.inputs = {input.uid};
  std::optional<Expected<util::Auid>> submitted;
  rig.bus.job_submit(spec, [&](Expected<util::Auid> r) { submitted = std::move(r); });
  rig.settle();
  ASSERT_TRUE(submitted.has_value() && submitted->ok());

  // Unknown job/task are kNotFound on the same typed channel.
  std::optional<Expected<jobs::JobStatusInfo>> unknown_job;
  rig.bus.job_status(util::next_auid(),
                     [&](Expected<jobs::JobStatusInfo> r) { unknown_job = std::move(r); });
  std::optional<Expected<jobs::TaskOrder>> unknown_task;
  rig.bus.job_claim(util::next_auid(), "w1",
                    [&](Expected<jobs::TaskOrder> r) { unknown_task = std::move(r); });
  rig.settle();
  EXPECT_EQ(unknown_job->code(), Errc::kNotFound);
  EXPECT_EQ(unknown_task->code(), Errc::kNotFound);

  // The task datum is delivered to the holder on its next sync.
  std::optional<api::Expected<services::SyncReply>> synced;
  rig.bus.ds_sync(full_sync("w1", {input.uid}),
                  [&](api::Expected<services::SyncReply> r) { synced = std::move(r); });
  rig.settle();
  ASSERT_TRUE(synced.has_value() && synced->ok());
  util::Auid task;
  for (const services::ScheduledData& item : (*synced)->download) {
    if (item.attributes.name == jobs::kTaskAttributeName) task = item.data.uid;
  }
  ASSERT_FALSE(task.is_nil());

  // The claim race over the bus: first wins, second stands down.
  std::optional<Expected<jobs::TaskOrder>> won;
  std::optional<Expected<jobs::TaskOrder>> lost;
  rig.bus.job_claim(task, "w1", [&](Expected<jobs::TaskOrder> r) { won = std::move(r); });
  rig.bus.job_claim(task, "w2", [&](Expected<jobs::TaskOrder> r) { lost = std::move(r); });
  rig.settle();
  ASSERT_TRUE(won.has_value() && lost.has_value());
  const Expected<jobs::TaskOrder>& winner = won->ok() ? *won : *lost;
  const Expected<jobs::TaskOrder>& loser = won->ok() ? *lost : *won;
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(loser.code(), Errc::kRejected);
  EXPECT_EQ(winner->input.uid, input.uid);
  EXPECT_EQ(winner->argv, spec.argv);

  jobs::TaskReport report;
  report.task = task;
  report.runner = won->ok() ? "w1" : "w2";
  report.ok = true;
  report.data_local = true;
  report.result = make_data("grep-result-0");
  std::optional<Status> reported;
  rig.bus.job_task_report(report, [&](Status s) { reported = s; });
  rig.settle();
  ASSERT_TRUE(reported.has_value() && reported->ok());

  std::optional<Expected<jobs::JobStatusInfo>> done;
  rig.bus.job_status(submitted->value(),
                     [&](Expected<jobs::JobStatusInfo> r) { done = std::move(r); });
  rig.settle();
  ASSERT_TRUE(done.has_value() && done->ok());
  EXPECT_TRUE((*done)->complete());
  EXPECT_EQ((*done)->data_local, 1);
  ASSERT_EQ((*done)->tasks.size(), 1u);
  EXPECT_EQ((*done)->tasks[0].result, report.result.uid);
  // The result datum entered Θ with the affinity chain to the collector.
  const auto scheduled = rig.container.ds().scheduled(report.result.uid);
  ASSERT_TRUE(scheduled.has_value());
  EXPECT_EQ(scheduled->attributes.affinity, token.uid);
}

TEST(JobEndpoints, DirectBusRunsTheLifecycle) { check_job_endpoints<DirectRig>(); }
TEST(JobEndpoints, SimBusRunsTheLifecycle) { check_job_endpoints<SimRig>(); }
TEST(JobEndpoints, RemoteBusRunsTheLifecycle) { check_job_endpoints<RemoteRig>(); }

// --- bulk endpoints ----------------------------------------------------------

template <typename Rig>
void check_batch_of_one_equivalence() {
  Rig rig;
  const core::Data scalar_data = make_data("scalar");
  const core::Data batch_data = make_data("batched");

  std::optional<Status> scalar;
  std::optional<BatchStatus> batch;
  rig.bus.dc_register(scalar_data, [&](Status s) { scalar = s; });
  rig.bus.dc_register_batch({batch_data}, [&](BatchStatus s) { batch = s; });
  rig.settle();
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ(scalar->ok(), (*batch)[0].ok());

  // Both really registered — and re-running either path reports the same
  // duplicate code.
  std::optional<Status> scalar_dup;
  std::optional<BatchStatus> batch_dup;
  rig.bus.dc_register(scalar_data, [&](Status s) { scalar_dup = s; });
  rig.bus.dc_register_batch({batch_data}, [&](BatchStatus s) { batch_dup = s; });
  rig.settle();
  EXPECT_EQ(scalar_dup->code(), Errc::kDuplicate);
  EXPECT_EQ((*batch_dup)[0].code(), Errc::kDuplicate);
  EXPECT_EQ(scalar_dup->error().service, (*batch_dup)[0].error().service);
}

TEST(BatchEndpoints, DirectBatchOfOneMatchesScalar) {
  check_batch_of_one_equivalence<DirectRig>();
}
TEST(BatchEndpoints, SimBatchOfOneMatchesScalar) { check_batch_of_one_equivalence<SimRig>(); }
TEST(BatchEndpoints, RemoteBatchOfOneMatchesScalar) {
  check_batch_of_one_equivalence<RemoteRig>();
}

template <typename Rig>
void check_partial_failure() {
  Rig rig;
  const core::Data poison = make_data("poison");
  std::optional<Status> seeded;
  rig.bus.dc_register(poison, [&](Status s) { seeded = s; });
  rig.settle();
  ASSERT_TRUE(seeded->ok());

  const core::Data before = make_data("before");
  const core::Data after = make_data("after");
  std::optional<BatchStatus> statuses;
  rig.bus.dc_register_batch({before, poison, after}, [&](BatchStatus s) { statuses = s; });
  rig.settle();
  ASSERT_EQ(statuses->size(), 3u);
  EXPECT_TRUE((*statuses)[0].ok());
  EXPECT_EQ((*statuses)[1].code(), Errc::kDuplicate);
  EXPECT_TRUE((*statuses)[2].ok());

  // The good items really landed despite the bad one.
  std::optional<Expected<core::Data>> got_before;
  std::optional<Expected<core::Data>> got_after;
  rig.bus.dc_get(before.uid, [&](auto d) { got_before = d; });
  rig.bus.dc_get(after.uid, [&](auto d) { got_after = d; });
  rig.settle();
  EXPECT_TRUE(got_before->ok());
  EXPECT_TRUE(got_after->ok());

  // Scheduler batches report per-item rejection the same way.
  std::optional<BatchStatus> schedule_statuses;
  rig.bus.ds_schedule_batch(
      {services::ScheduledData{before, attr(1)}, services::ScheduledData{poison, attr(-7)},
       services::ScheduledData{after, attr(2)}},
      [&](BatchStatus s) { schedule_statuses = s; });
  rig.settle();
  ASSERT_EQ(schedule_statuses->size(), 3u);
  EXPECT_TRUE((*schedule_statuses)[0].ok());
  EXPECT_EQ((*schedule_statuses)[1].code(), Errc::kRejected);
  EXPECT_TRUE((*schedule_statuses)[2].ok());
  EXPECT_EQ(rig.container.ds().scheduled_count(), 2u);
}

TEST(BatchEndpoints, DirectPartialFailureDoesNotPoison) { check_partial_failure<DirectRig>(); }
TEST(BatchEndpoints, SimPartialFailureDoesNotPoison) { check_partial_failure<SimRig>(); }
TEST(BatchEndpoints, RemotePartialFailureDoesNotPoison) { check_partial_failure<RemoteRig>(); }

template <typename Rig>
void check_empty_batch_noop() {
  Rig rig;
  const std::uint64_t traffic_before = rig.traffic();
  std::optional<BatchStatus> registered;
  std::optional<api::BatchLocators> located;
  std::optional<BatchStatus> scheduled;
  std::optional<BatchStatus> published;
  rig.bus.dc_register_batch({}, [&](BatchStatus s) { registered = s; });
  rig.bus.dc_locators_batch({}, [&](api::BatchLocators l) { located = l; });
  rig.bus.ds_schedule_batch({}, [&](BatchStatus s) { scheduled = s; });
  rig.bus.ddc_publish_batch({}, [&](BatchStatus s) { published = s; });
  rig.settle();
  EXPECT_TRUE(registered->empty());
  EXPECT_TRUE(located->empty());
  EXPECT_TRUE(scheduled->empty());
  EXPECT_TRUE(published->empty());
  EXPECT_EQ(rig.traffic(), traffic_before);  // no RPC / service call issued
}

TEST(BatchEndpoints, DirectEmptyBatchIsNoop) { check_empty_batch_noop<DirectRig>(); }
TEST(BatchEndpoints, SimEmptyBatchIsNoop) { check_empty_batch_noop<SimRig>(); }
TEST(BatchEndpoints, RemoteEmptyBatchIsNoop) { check_empty_batch_noop<RemoteRig>(); }

template <typename Rig>
void check_ddc_and_locator_batches() {
  Rig rig;
  std::optional<BatchStatus> published;
  rig.bus.ddc_publish_batch({{"k1", "host-a"}, {"", "bad"}, {"k1", "host-b"}},
                            [&](BatchStatus s) { published = s; });
  rig.settle();
  ASSERT_EQ(published->size(), 3u);
  EXPECT_TRUE((*published)[0].ok());
  EXPECT_EQ((*published)[1].code(), Errc::kInvalidArgument);
  EXPECT_TRUE((*published)[2].ok());

  std::optional<Expected<std::vector<std::string>>> found;
  rig.bus.ddc_search("k1", [&](auto v) { found = v; });
  rig.settle();
  ASSERT_TRUE(found->ok());
  EXPECT_EQ((*found)->size(), 2u);

  // Locator batch: per-item kNotFound for unknown uids.
  const core::Data known = make_data("known");
  std::optional<Status> seeded;
  rig.bus.dc_register(known, [&](Status s) { seeded = s; });
  rig.settle();
  core::Locator locator;
  locator.data_uid = known.uid;
  locator.protocol = "ftp";
  locator.host = "server";
  locator.path = "x";
  std::optional<Status> added;
  rig.bus.dc_add_locator(locator, [&](Status s) { added = s; });
  rig.settle();
  ASSERT_TRUE(added->ok());

  std::optional<api::BatchLocators> located;
  rig.bus.dc_locators_batch({known.uid, util::next_auid()},
                            [&](api::BatchLocators l) { located = l; });
  rig.settle();
  ASSERT_EQ(located->size(), 2u);
  ASSERT_TRUE((*located)[0].ok());
  EXPECT_EQ((*located)[0]->size(), 1u);
  EXPECT_EQ((*located)[1].code(), Errc::kNotFound);
}

TEST(BatchEndpoints, DirectDdcAndLocatorBatches) { check_ddc_and_locator_batches<DirectRig>(); }
TEST(BatchEndpoints, SimDdcAndLocatorBatches) { check_ddc_and_locator_batches<SimRig>(); }
TEST(BatchEndpoints, RemoteDdcAndLocatorBatches) { check_ddc_and_locator_batches<RemoteRig>(); }

/// The bulk endpoint's whole point: one service event per batch, not per
/// item, with per-item service time preserved.
TEST(BatchEndpoints, SimBatchAmortizesServiceEvents) {
  SimRig scalar_rig;
  std::vector<core::Data> items;
  for (int i = 0; i < 64; ++i) items.push_back(make_data("d" + std::to_string(i)));

  for (const core::Data& data : items) scalar_rig.bus.dc_register(data, [](Status) {});
  scalar_rig.settle();
  EXPECT_EQ(scalar_rig.bus.rpc_count(), 64u);
  EXPECT_EQ(scalar_rig.queue.served(), 64u);

  SimRig batch_rig;
  std::optional<BatchStatus> statuses;
  batch_rig.bus.dc_register_batch(items, [&](BatchStatus s) { statuses = s; });
  batch_rig.settle();
  ASSERT_EQ(statuses->size(), 64u);
  for (const Status& status : *statuses) EXPECT_TRUE(status.ok());
  EXPECT_EQ(batch_rig.bus.rpc_count(), 1u);
  EXPECT_EQ(batch_rig.queue.served(), 1u);           // one service event...
  EXPECT_EQ(batch_rig.queue.items_served(), 64u);    // ...charged for 64 items
  EXPECT_EQ(batch_rig.container.dc().size(), 64u);
}

// --- the Session facade ------------------------------------------------------

template <typename Rig>
void check_session() {
  Rig rig;
  api::BitDew bitdew(rig.bus, "client");
  api::ActiveData active_data(rig.bus, "client");
  api::Session session(bitdew, active_data, rig.pump());

  const Expected<core::Data> data = session.create_data("dataset", {4096, "cafe"});
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(session.offer_local(*data, "http").ok());
  const auto locators = session.locate(data->uid);
  ASSERT_TRUE(locators.ok());
  EXPECT_EQ(locators->size(), 1u);

  // Blocking search: found and not-found.
  const Expected<core::Data> found = session.search("dataset");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->uid, data->uid);
  EXPECT_EQ(session.search("nope").code(), Errc::kNotFound);

  // Typed rejection through the blocking path.
  EXPECT_TRUE(session.schedule(*data, attr(2)).ok());
  EXPECT_EQ(session.schedule(*data, attr(-9)).code(), Errc::kRejected);

  // wait_all over futures: all ok, then one duplicate poisoning the join.
  std::vector<api::StatusFuture> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(session.publish_async("key" + std::to_string(i), "value"));
  }
  EXPECT_TRUE(session.wait_all(futures).ok());

  const Expected<std::vector<std::string>> values = session.lookup("key1");
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->size(), 1u);

  // Bulk through the session: one round-trip, per-item statuses.
  auto [slots, statuses] = session.create_data_batch(
      {{"bulk-a", {10, "aa"}}, {"bulk-b", {20, "bb"}}});
  ASSERT_EQ(slots.size(), 2u);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok() && statuses[1].ok());
  const BatchStatus again = session.register_batch(slots);
  EXPECT_EQ(again[0].code(), Errc::kDuplicate);
  EXPECT_EQ(again[1].code(), Errc::kDuplicate);

  // A wait that can never resolve fails typed instead of hanging.
  api::StatusFuture orphan;
  EXPECT_EQ(session.wait(orphan).code(), Errc::kUnavailable);
}

TEST(Session, BlocksOverDirectBus) { check_session<DirectRig>(); }
TEST(Session, BlocksOverSimBus) { check_session<SimRig>(); }
TEST(Session, BlocksOverRemoteBus) { check_session<RemoteRig>(); }

// --- transport failure contract ----------------------------------------------

/// Killing the daemon must surface Errc::kTransport within the call
/// deadline — never hang, never crash.
TEST(RemoteTransport, DaemonKillSurfacesTransportError) {
  RemoteRig rig;
  const core::Data data = make_data("survivor");
  std::optional<Status> before;
  rig.bus.dc_register(data, [&](Status s) { before = s; });
  ASSERT_TRUE(before.has_value() && before->ok());

  rig.host.stop();  // the daemon dies with a call-ready client attached

  const auto start = std::chrono::steady_clock::now();
  std::optional<Status> after;
  rig.bus.dc_register(make_data("orphan"), [&](Status s) { after = s; });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->code(), Errc::kTransport);
  EXPECT_EQ(after->error().service, "bus");
  EXPECT_LT(elapsed, 5.0);  // bounded by connect timeout + deadline, no hang

  // A batch against the dead daemon fails per-item, index-aligned.
  std::optional<BatchStatus> batch;
  rig.bus.dc_register_batch({make_data("a"), make_data("b")}, [&](BatchStatus s) { batch = s; });
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].code(), Errc::kTransport);
  EXPECT_EQ((*batch)[1].code(), Errc::kTransport);
}

TEST(RemoteTransport, ConnectionRefusedIsTransportNotHang) {
  // Grab an ephemeral port, then close the listener: nothing serves it.
  auto listener = rpc::tcp_listen(0, /*loopback_only=*/true);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t dead_port = listener->port;
  listener->fd.reset();

  api::RemoteServiceBus bus("127.0.0.1", dead_port, api::RemoteBusConfig{0.5, 0.5});
  std::optional<Expected<core::Data>> reply;
  bus.dc_get(util::next_auid(), [&](auto d) { reply = d; });
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->code(), Errc::kTransport);
}

/// The daemon restarting under a live client: the first call after the
/// restart may fail (the old socket is dead), but the bus reconnects and
/// the next call lands on the fresh host.
TEST(RemoteTransport, ClientReconnectsAfterRestart) {
  util::ManualClock clock;
  dht::LocalDht ddc;
  services::ServiceContainer container("server", clock);
  rpc::ServiceHostConfig config{0, /*loopback_only=*/true, -1};

  auto first = std::make_unique<rpc::ServiceHost>(container, ddc, config);
  ASSERT_TRUE(first->start().ok());
  const std::uint16_t port = first->port();

  api::RemoteServiceBus bus("127.0.0.1", port, api::RemoteBusConfig{1.0, 2.0});
  std::optional<Status> seeded;
  bus.dc_register(make_data("pre-restart"), [&](Status s) { seeded = s; });
  ASSERT_TRUE(seeded.has_value() && seeded->ok());

  first.reset();  // kill
  config.port = port;
  rpc::ServiceHost second(container, ddc, config);  // resurrect on the same port
  ASSERT_TRUE(second.start().ok());

  // The stale connection fails typed, then the bus dials the new host.
  std::optional<Status> stale;
  bus.dc_register(make_data("during-restart"), [&](Status s) { stale = s; });
  ASSERT_TRUE(stale.has_value());
  std::optional<Status> fresh;
  bus.dc_register(make_data("post-restart"), [&](Status s) { fresh = s; });
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(fresh->ok());
  EXPECT_EQ(container.dc().size(), stale->ok() ? 3u : 2u);
}

}  // namespace
}  // namespace bitdew
