// TCP transport tests: length-prefixed framing (round-trips, deadlines,
// oversize rejection) and ServiceHost hardening — malformed, truncated or
// fuzzed frames must produce a typed decode failure and a dropped
// connection, never a crash, a hang, or a wedged server. Everything runs on
// loopback sockets with ephemeral ports.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <optional>
#include <thread>

#include "api/remote_service_bus.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "util/rng.hpp"

namespace bitdew {
namespace {

using api::Errc;
using api::Status;

/// A listener + connected client pair on loopback.
struct SocketPair {
  SocketPair() {
    auto listener = rpc::tcp_listen(0, /*loopback_only=*/true);
    if (!listener.ok()) throw std::runtime_error(listener.error().to_string());
    server_listener = std::move(listener->fd);
    auto connected = rpc::tcp_connect("127.0.0.1", listener->port, 1.0);
    if (!connected.ok()) throw std::runtime_error(connected.error().to_string());
    client = std::move(*connected);
    server = rpc::tcp_accept(server_listener.get(), 1.0);
    if (!server.valid()) throw std::runtime_error("accept failed");
  }

  rpc::Fd server_listener;
  rpc::Fd client;
  rpc::Fd server;
};

TEST(Framing, RoundTripsPayloads) {
  SocketPair pair;
  const std::string payloads[] = {"", "x", std::string("bin\0ary", 7), std::string(100000, 'q')};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(rpc::send_frame(pair.client.get(), payload));
    const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 1.0);
    ASSERT_EQ(received.status, rpc::IoStatus::kOk);
    EXPECT_EQ(received.payload, payload);
  }
}

TEST(Framing, BackToBackFramesStayDelimited) {
  SocketPair pair;
  ASSERT_TRUE(rpc::send_frame(pair.client.get(), "first"));
  ASSERT_TRUE(rpc::send_frame(pair.client.get(), "second"));
  ASSERT_TRUE(rpc::send_frame(pair.client.get(), ""));
  EXPECT_EQ(rpc::recv_frame(pair.server.get(), 1.0).payload, "first");
  EXPECT_EQ(rpc::recv_frame(pair.server.get(), 1.0).payload, "second");
  const rpc::RecvResult third = rpc::recv_frame(pair.server.get(), 1.0);
  EXPECT_EQ(third.status, rpc::IoStatus::kOk);
  EXPECT_TRUE(third.payload.empty());
}

TEST(Framing, DeadlineExpiresAsTimeout) {
  SocketPair pair;
  const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 0.05);
  EXPECT_EQ(received.status, rpc::IoStatus::kTimeout);
}

TEST(Framing, PeerCloseIsClosedNotError) {
  SocketPair pair;
  pair.client.reset();
  const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 1.0);
  EXPECT_EQ(received.status, rpc::IoStatus::kClosed);
}

TEST(Framing, TornFrameIsError) {
  SocketPair pair;
  // A length prefix promising 100 bytes, then the peer dies after 3.
  rpc::Writer w;
  w.u32(100);
  w.append_raw("abc");
  ASSERT_TRUE(rpc::send_frame(pair.client.get(), "ignored"));  // keep stream warm
  ASSERT_EQ(rpc::recv_frame(pair.server.get(), 1.0).status, rpc::IoStatus::kOk);
  ::send(pair.client.get(), w.buffer().data(), w.size(), MSG_NOSIGNAL);
  pair.client.reset();
  const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 1.0);
  EXPECT_EQ(received.status, rpc::IoStatus::kError);
}

TEST(Framing, OversizeLengthPrefixRejectedBeforeAllocation) {
  SocketPair pair;
  rpc::Writer w;
  w.u32(0xffffffffu);  // 4 GiB claim
  ::send(pair.client.get(), w.buffer().data(), w.size(), MSG_NOSIGNAL);
  const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 1.0);
  EXPECT_EQ(received.status, rpc::IoStatus::kOversize);
}

// --- ServiceHost hardening ---------------------------------------------------

struct HostRig {
  HostRig() : container("server", clock), host(container, ddc, {0, true, -1}) {
    const Status started = host.start();
    if (!started.ok()) throw std::runtime_error(started.error().to_string());
  }

  /// Sends raw bytes as one frame and returns the connection outcome.
  rpc::IoStatus poke(std::string_view frame_payload) {
    auto connected = rpc::tcp_connect("127.0.0.1", host.port(), 1.0);
    if (!connected.ok()) return rpc::IoStatus::kError;
    if (!rpc::send_frame(connected->get(), frame_payload)) return rpc::IoStatus::kError;
    return rpc::recv_frame(connected->get(), 2.0).status;
  }

  /// The server must still answer a well-formed request.
  bool alive() {
    api::RemoteServiceBus bus("127.0.0.1", host.port(), api::RemoteBusConfig{1.0, 2.0});
    return bus.ping().ok();
  }

  util::ManualClock clock;
  services::ServiceContainer container;
  dht::LocalDht ddc;
  rpc::ServiceHost host;
};

TEST(ServiceHostHardening, GarbageFrameDropsConnectionNotServer) {
  HostRig rig;
  // Unknown endpoint id: decode fails typed, connection drops (kClosed).
  rpc::Writer w;
  w.u16(0x7fff);
  w.u64(1);
  EXPECT_EQ(rig.poke(w.buffer()), rpc::IoStatus::kClosed);
  EXPECT_GE(rig.host.frames_rejected(), 1u);
  EXPECT_TRUE(rig.alive());
}

TEST(ServiceHostHardening, TruncatedRequestBodyDropsConnection) {
  HostRig rig;
  // A valid dc_get header but only half an Auid behind it.
  rpc::Writer w;
  rpc::wire::write_frame_header(w, {rpc::wire::Endpoint::kDcGet, 7});
  w.u64(0xdead);  // Auid needs 16 bytes; this is 8
  EXPECT_EQ(rig.poke(w.buffer()), rpc::IoStatus::kClosed);
  EXPECT_TRUE(rig.alive());
}

TEST(ServiceHostHardening, TrailingGarbageAfterRequestDropsConnection) {
  HostRig rig;
  rpc::Writer w;
  rpc::wire::write_frame_header(w, {rpc::wire::Endpoint::kPing, 1});
  w.str("stowaway bytes the ping request does not define");
  EXPECT_EQ(rig.poke(w.buffer()), rpc::IoStatus::kClosed);
  EXPECT_TRUE(rig.alive());
}

TEST(ServiceHostHardening, FuzzedFramesNeverKillTheServer) {
  HostRig rig;
  util::Rng rng(0xb17d3);
  for (int round = 0; round < 64; ++round) {
    std::string garbage;
    const std::uint64_t length = rng.below(256);
    garbage.reserve(length);
    for (std::uint64_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.below(256)));
    }
    rig.poke(garbage);  // outcome may be kClosed (dropped) or kOk (it
                        // happened to decode) — what matters is survival
  }
  EXPECT_TRUE(rig.alive());
}

TEST(ServiceHostHardening, ManyConcurrentClients) {
  HostRig rig;
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&rig, &ok_count, c] {
      api::RemoteServiceBus bus("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 2.0});
      for (int i = 0; i < 16; ++i) {
        std::optional<Status> published;
        bus.ddc_publish("client-" + std::to_string(c), "v" + std::to_string(i),
                        [&](Status s) { published = s; });
        if (published.has_value() && published->ok()) ++ok_count;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(ok_count.load(), kClients * 16);
  EXPECT_EQ(rig.ddc.key_count(), static_cast<std::size_t>(kClients));
}

}  // namespace
}  // namespace bitdew
