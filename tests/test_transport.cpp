// TCP transport tests: length-prefixed framing (round-trips, deadlines,
// oversize rejection), ServiceHost hardening — malformed, truncated or
// fuzzed frames must produce a typed decode failure and a dropped
// connection, never a crash, a hang, or a wedged server — and the real data
// plane over live sockets: chunked put/get round trips, resume across a
// daemon kill + WAL restart, mid-stream corruption, and concurrent streams.
// Everything runs on loopback sockets with ephemeral ports.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "api/remote_service_bus.hpp"
#include "api/transfer_manager.hpp"
#include "rpc/reactor.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "transfer/tcp.hpp"
#include "util/rng.hpp"

namespace bitdew {
namespace {

using api::Errc;
using api::Status;

/// A listener + connected client pair on loopback.
struct SocketPair {
  SocketPair() {
    auto listener = rpc::tcp_listen(0, /*loopback_only=*/true);
    if (!listener.ok()) throw std::runtime_error(listener.error().to_string());
    server_listener = std::move(listener->fd);
    auto connected = rpc::tcp_connect("127.0.0.1", listener->port, 1.0);
    if (!connected.ok()) throw std::runtime_error(connected.error().to_string());
    client = std::move(*connected);
    server = rpc::tcp_accept(server_listener.get(), 1.0);
    if (!server.valid()) throw std::runtime_error("accept failed");
  }

  rpc::Fd server_listener;
  rpc::Fd client;
  rpc::Fd server;
};

TEST(Framing, RoundTripsPayloads) {
  SocketPair pair;
  const std::string payloads[] = {"", "x", std::string("bin\0ary", 7), std::string(100000, 'q')};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(rpc::send_frame(pair.client.get(), payload));
    const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 1.0);
    ASSERT_EQ(received.status, rpc::IoStatus::kOk);
    EXPECT_EQ(received.payload, payload);
  }
}

TEST(Framing, BackToBackFramesStayDelimited) {
  SocketPair pair;
  ASSERT_TRUE(rpc::send_frame(pair.client.get(), "first"));
  ASSERT_TRUE(rpc::send_frame(pair.client.get(), "second"));
  ASSERT_TRUE(rpc::send_frame(pair.client.get(), ""));
  EXPECT_EQ(rpc::recv_frame(pair.server.get(), 1.0).payload, "first");
  EXPECT_EQ(rpc::recv_frame(pair.server.get(), 1.0).payload, "second");
  const rpc::RecvResult third = rpc::recv_frame(pair.server.get(), 1.0);
  EXPECT_EQ(third.status, rpc::IoStatus::kOk);
  EXPECT_TRUE(third.payload.empty());
}

TEST(Framing, DeadlineExpiresAsTimeout) {
  SocketPair pair;
  const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 0.05);
  EXPECT_EQ(received.status, rpc::IoStatus::kTimeout);
}

TEST(Framing, PeerCloseIsClosedNotError) {
  SocketPair pair;
  pair.client.reset();
  const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 1.0);
  EXPECT_EQ(received.status, rpc::IoStatus::kClosed);
}

TEST(Framing, TornFrameIsError) {
  SocketPair pair;
  // A length prefix promising 100 bytes, then the peer dies after 3.
  rpc::Writer w;
  w.u32(100);
  w.append_raw("abc");
  ASSERT_TRUE(rpc::send_frame(pair.client.get(), "ignored"));  // keep stream warm
  ASSERT_EQ(rpc::recv_frame(pair.server.get(), 1.0).status, rpc::IoStatus::kOk);
  ::send(pair.client.get(), w.buffer().data(), w.size(), MSG_NOSIGNAL);
  pair.client.reset();
  const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 1.0);
  EXPECT_EQ(received.status, rpc::IoStatus::kError);
}

TEST(Framing, OversizeLengthPrefixRejectedBeforeAllocation) {
  SocketPair pair;
  rpc::Writer w;
  w.u32(0xffffffffu);  // 4 GiB claim
  ::send(pair.client.get(), w.buffer().data(), w.size(), MSG_NOSIGNAL);
  const rpc::RecvResult received = rpc::recv_frame(pair.server.get(), 1.0);
  EXPECT_EQ(received.status, rpc::IoStatus::kOversize);
}

// --- EpollServer: the readiness-loop substrate -------------------------------

/// An echo reactor; frames starting with "slow" stall their worker first.
rpc::EpollServer make_echo_reactor(int workers = 4) {
  return rpc::EpollServer(
      [](std::uint64_t, const std::string& frame) -> std::optional<rpc::ReplyFrame> {
        if (frame.rfind("slow", 0) == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
        }
        rpc::ReplyFrame reply;
        reply.bytes = frame;
        return reply;
      },
      rpc::EpollServerConfig{0, true, -1, 30, workers, 32});
}

TEST(EpollReactor, SlowHandlerDoesNotBlockOtherRequestsOnOneSocket) {
  rpc::EpollServer server = make_echo_reactor();
  ASSERT_TRUE(server.start().ok());
  auto connected = rpc::tcp_connect("127.0.0.1", server.port(), 1.0);
  ASSERT_TRUE(connected.ok());
  // Both frames ride the SAME connection; the slow one is first on the
  // wire. The fast reply must come back first — the loop hands frames to
  // the worker pool and completes replies out of order.
  ASSERT_TRUE(rpc::send_frame(connected->get(), "slow-one"));
  ASSERT_TRUE(rpc::send_frame(connected->get(), "fast-two"));
  const rpc::RecvResult first = rpc::recv_frame(connected->get(), 5.0);
  ASSERT_EQ(first.status, rpc::IoStatus::kOk);
  EXPECT_EQ(first.payload, "fast-two");
  const rpc::RecvResult second = rpc::recv_frame(connected->get(), 5.0);
  ASSERT_EQ(second.status, rpc::IoStatus::kOk);
  EXPECT_EQ(second.payload, "slow-one");
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
}

TEST(EpollReactor, StopStartFlapSurvivesRacingConnects) {
  // stop() must drain the loop and join the workers deterministically even
  // while a dialer races late accepts against it (run under TSan in CI).
  rpc::EpollServer server = make_echo_reactor(2);
  std::atomic<bool> done{false};
  std::atomic<std::uint16_t> port{0};
  std::thread dialer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::uint16_t p = port.load(std::memory_order_acquire);
      if (p == 0) continue;
      auto c = rpc::tcp_connect("127.0.0.1", p, 0.2);
      if (c.ok()) rpc::send_frame(c->get(), "hello", 0.2);
    }
  });
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(server.start().ok());
    port.store(server.port(), std::memory_order_release);
    auto probe = rpc::tcp_connect("127.0.0.1", server.port(), 1.0);
    if (probe.ok() && rpc::send_frame(probe->get(), "probe")) {
      EXPECT_EQ(rpc::recv_frame(probe->get(), 2.0).payload, "probe");
    }
    server.stop();
    EXPECT_FALSE(server.running());
  }
  done.store(true, std::memory_order_release);
  dialer.join();
}

TEST(EpollReactor, TenThousandIdleConnectionsSmoke) {
  rlimit limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  }
  // Each idle client costs two descriptors in this process (dialed side +
  // accepted side); keep headroom for the suite's own files.
  const std::size_t budget =
      limit.rlim_cur > 600 ? (static_cast<std::size_t>(limit.rlim_cur) - 600) / 2 : 0;
  const std::size_t target = std::min<std::size_t>(10000, budget);
  if (target < 100) GTEST_SKIP() << "RLIMIT_NOFILE too low for an idle-connection smoke";

  rpc::EpollServer server = make_echo_reactor(2);
  ASSERT_TRUE(server.start().ok());
  std::vector<rpc::Fd> idle;
  idle.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    auto connected = rpc::tcp_connect("127.0.0.1", server.port(), 5.0);
    ASSERT_TRUE(connected.ok()) << "connection " << i << ": " << connected.error().to_string();
    idle.push_back(std::move(*connected));
    // Pace the dialing so the accept loop never falls a full backlog behind.
    if (i % 512 == 0) {
      while (i > server.connections_open() + 2048) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.connections_open() < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.connections_open(), target);

  // The loop still serves requests with every slot occupied.
  auto active = rpc::tcp_connect("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(active.ok());
  ASSERT_TRUE(rpc::send_frame(active->get(), "still-alive"));
  EXPECT_EQ(rpc::recv_frame(active->get(), 5.0).payload, "still-alive");
  idle.clear();
  server.stop();
}

// --- ServiceHost hardening ---------------------------------------------------

struct HostRig {
  HostRig() : container("server", clock), host(container, ddc, {0, true, -1}) {
    const Status started = host.start();
    if (!started.ok()) throw std::runtime_error(started.error().to_string());
  }

  /// Sends raw bytes as one frame and returns the connection outcome.
  rpc::IoStatus poke(std::string_view frame_payload) {
    auto connected = rpc::tcp_connect("127.0.0.1", host.port(), 1.0);
    if (!connected.ok()) return rpc::IoStatus::kError;
    if (!rpc::send_frame(connected->get(), frame_payload)) return rpc::IoStatus::kError;
    return rpc::recv_frame(connected->get(), 2.0).status;
  }

  /// The server must still answer a well-formed request.
  bool alive() {
    api::RemoteServiceBus bus("127.0.0.1", host.port(), api::RemoteBusConfig{1.0, 2.0});
    return bus.ping().ok();
  }

  util::ManualClock clock;
  services::ServiceContainer container;
  dht::LocalDht ddc;
  rpc::ServiceHost host;
};

TEST(ServiceHostHardening, GarbageFrameDropsConnectionNotServer) {
  HostRig rig;
  // Unknown endpoint id: decode fails typed, connection drops (kClosed).
  rpc::Writer w;
  w.u16(0x7fff);
  w.u64(1);
  EXPECT_EQ(rig.poke(w.buffer()), rpc::IoStatus::kClosed);
  EXPECT_GE(rig.host.frames_rejected(), 1u);
  EXPECT_TRUE(rig.alive());
}

TEST(ServiceHostHardening, TruncatedRequestBodyDropsConnection) {
  HostRig rig;
  // A valid dc_get header but only half an Auid behind it.
  rpc::Writer w;
  rpc::wire::write_frame_header(w, {rpc::wire::Endpoint::kDcGet, 7});
  w.u64(0xdead);  // Auid needs 16 bytes; this is 8
  EXPECT_EQ(rig.poke(w.buffer()), rpc::IoStatus::kClosed);
  EXPECT_TRUE(rig.alive());
}

TEST(ServiceHostHardening, TrailingGarbageAfterRequestDropsConnection) {
  HostRig rig;
  rpc::Writer w;
  rpc::wire::write_frame_header(w, {rpc::wire::Endpoint::kPing, 1});
  w.str("stowaway bytes the ping request does not define");
  EXPECT_EQ(rig.poke(w.buffer()), rpc::IoStatus::kClosed);
  EXPECT_TRUE(rig.alive());
}

TEST(ServiceHostHardening, FuzzedFramesNeverKillTheServer) {
  HostRig rig;
  util::Rng rng(0xb17d3);
  for (int round = 0; round < 64; ++round) {
    std::string garbage;
    const std::uint64_t length = rng.below(256);
    garbage.reserve(length);
    for (std::uint64_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.below(256)));
    }
    rig.poke(garbage);  // outcome may be kClosed (dropped) or kOk (it
                        // happened to decode) — what matters is survival
  }
  EXPECT_TRUE(rig.alive());
}

/// Every wire endpoint, by wire value. The static_assert ties this table to
/// the enum: a new endpoint fails the build here until its garbage-body
/// probe exists, and tools/lint_wire.py checks the same coverage (plus
/// name/dispatch/codec/docs) textually in CI.
constexpr rpc::wire::Endpoint kFuzzProbeEndpoints[] = {
    rpc::wire::Endpoint::kPing,
    rpc::wire::Endpoint::kDcRegister,
    rpc::wire::Endpoint::kDcGet,
    rpc::wire::Endpoint::kDcSearch,
    rpc::wire::Endpoint::kDcRemove,
    rpc::wire::Endpoint::kDcAddLocator,
    rpc::wire::Endpoint::kDcLocators,
    rpc::wire::Endpoint::kDrPut,
    rpc::wire::Endpoint::kDrGet,
    rpc::wire::Endpoint::kDrRemove,
    rpc::wire::Endpoint::kDtRegister,
    rpc::wire::Endpoint::kDtMonitor,
    rpc::wire::Endpoint::kDtComplete,
    rpc::wire::Endpoint::kDtFailure,
    rpc::wire::Endpoint::kDtGiveUp,
    rpc::wire::Endpoint::kDsSchedule,
    rpc::wire::Endpoint::kDsPin,
    rpc::wire::Endpoint::kDsUnschedule,
    rpc::wire::Endpoint::kDsSync,
    rpc::wire::Endpoint::kDdcPublish,
    rpc::wire::Endpoint::kDdcSearch,
    rpc::wire::Endpoint::kDcRegisterBatch,
    rpc::wire::Endpoint::kDcLocatorsBatch,
    rpc::wire::Endpoint::kDsScheduleBatch,
    rpc::wire::Endpoint::kDdcPublishBatch,
    rpc::wire::Endpoint::kDrPutStart,
    rpc::wire::Endpoint::kDrPutChunk,
    rpc::wire::Endpoint::kDrPutCommit,
    rpc::wire::Endpoint::kDrGetChunk,
    rpc::wire::Endpoint::kDsHosts,
    rpc::wire::Endpoint::kDrStats,
    rpc::wire::Endpoint::kRingLookup,
    rpc::wire::Endpoint::kRingJoin,
    rpc::wire::Endpoint::kRingNotify,
    rpc::wire::Endpoint::kRingStabilize,
    rpc::wire::Endpoint::kRingStore,
    rpc::wire::Endpoint::kRingLeave,
    rpc::wire::Endpoint::kRingInfo,
    rpc::wire::Endpoint::kRingSearch,
    rpc::wire::Endpoint::kJobSubmit,
    rpc::wire::Endpoint::kJobStatus,
    rpc::wire::Endpoint::kJobClaim,
    rpc::wire::Endpoint::kJobTaskReport,
};
static_assert(std::size(kFuzzProbeEndpoints) ==
                  static_cast<std::size_t>(rpc::wire::Endpoint::kEndpointCount),
              "new endpoint: add its garbage-body fuzz probe");

TEST(ServiceHostHardening, EveryEndpointSurvivesGarbageBodies) {
  HostRig rig;
  util::Rng rng(0x5eed);
  for (const rpc::wire::Endpoint endpoint : kFuzzProbeEndpoints) {
    // A well-formed header for a real endpoint followed by bodies the
    // decoder never agreed to: empty, short, and random bytes. Every
    // outcome must be a typed reply or a dropped connection — the host
    // answers a clean ping afterwards either way.
    for (int round = 0; round < 3; ++round) {
      rpc::Writer w;
      rpc::wire::write_frame_header(w, {endpoint, rng.below(1u << 16)});
      const std::uint64_t length = round == 0 ? 0 : rng.below(96);
      for (std::uint64_t i = 0; i < length; ++i) {
        w.u8(static_cast<std::uint8_t>(rng.below(256)));
      }
      rig.poke(w.buffer());
    }
    EXPECT_TRUE(rig.alive()) << "host wedged by garbage "
                             << rpc::wire::endpoint_name(endpoint) << " bodies";
  }
}

// --- the data plane over live sockets -----------------------------------------

/// Filesystem + registered-datum helpers shared by the data-plane tests.
struct DataPlaneRig : HostRig {
  DataPlaneRig() {
    dir = std::filesystem::temp_directory_path() /
          ("bitdew-dataplane-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter()++));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~DataPlaneRig() { std::filesystem::remove_all(dir); }

  static int& counter() {
    static int value = 0;
    return value;
  }

  std::string make_payload(std::size_t size, int salt = 0) {
    std::string payload(size, '\0');
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<char>((i * 211 + 13 + static_cast<std::size_t>(salt)) & 0xff);
    }
    return payload;
  }

  std::string write_file(const std::string& name, const std::string& bytes) {
    const std::string path = (dir / name).string();
    std::ofstream(path, std::ios::binary) << bytes;
    return path;
  }

  std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  core::Data register_data(api::RemoteServiceBus& bus, const std::string& name,
                           const std::string& path) {
    core::Data data;
    data.uid = util::next_auid();
    data.name = name;
    const core::Content content = core::file_content(path);
    data.size = content.size;
    data.checksum = content.checksum;
    std::optional<Status> registered;
    bus.dc_register(data, [&](Status s) { registered = s; });
    EXPECT_TRUE(registered.has_value() && registered->ok());
    return data;
  }

  std::filesystem::path dir;
};

TEST(DataPlane, LivePutGetRoundTripIsByteIdentical) {
  DataPlaneRig rig;
  api::RemoteServiceBus bus("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 5.0});
  const std::string payload = rig.make_payload(200000);
  const std::string in_path = rig.write_file("in.bin", payload);
  const core::Data data = rig.register_data(bus, "payload", in_path);

  transfer::TcpTransfer tcp(bus, transfer::TcpConfig{32 * 1024, 3, true});
  const Status put = tcp.put_file(data, in_path);
  ASSERT_TRUE(put.ok()) << put.error().to_string();
  EXPECT_EQ(tcp.stats().chunks_sent, 7);  // 6 full chunks + remainder

  const std::string out_path = (rig.dir / "out.bin").string();
  const Status got = tcp.get_file(data, out_path);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(rig.slurp(out_path), payload);
  EXPECT_EQ(rig.container.dt().stats().completed, 2u);
}

TEST(DataPlane, PutResumesAcrossDaemonKillAndWalRestart) {
  // The acceptance scenario: a multi-chunk upload is interrupted by killing
  // the daemon, a fresh daemon replays the WAL, and the resumed put sends
  // only the missing bytes; the final get is byte-identical.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("bitdew-resume-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string wal = (dir / "bitdewd.wal").string();

  std::string payload(160000, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 97 + 31) & 0xff);
  }
  const std::string in_path = (dir / "in.bin").string();
  std::ofstream(in_path, std::ios::binary) << payload;

  core::Data data;
  data.uid = util::next_auid();
  data.name = "resumable";
  data.size = static_cast<std::int64_t>(payload.size());
  data.checksum = core::file_content(in_path).checksum;

  constexpr std::int64_t kChunk = 16 * 1024;
  constexpr std::int64_t kStaged = 5 * kChunk;
  util::ManualClock clock;
  {
    // First daemon: register the datum, stage five chunks, die.
    services::ServiceContainer container("server", clock, wal);
    dht::LocalDht ddc;
    rpc::ServiceHost host(container, ddc, {0, true, -1});
    ASSERT_TRUE(host.start().ok());
    api::RemoteServiceBus bus("127.0.0.1", host.port(), api::RemoteBusConfig{1.0, 5.0});
    std::optional<Status> registered;
    bus.dc_register(data, [&](Status s) { registered = s; });
    ASSERT_TRUE(registered->ok());
    std::optional<api::Expected<std::int64_t>> started;
    bus.dr_put_start(data, [&](auto reply) { started = std::move(reply); });
    ASSERT_TRUE(started->ok());
    for (std::int64_t at = 0; at < kStaged; at += kChunk) {
      std::optional<Status> sent;
      bus.dr_put_chunk(data.uid, at,
                       payload.substr(static_cast<std::size_t>(at), kChunk),
                       [&](Status s) { sent = s; });
      ASSERT_TRUE(sent->ok());
    }
    host.stop();
  }  // container destroyed: only the WAL survives

  {
    // Second daemon: same WAL, fresh everything else.
    services::ServiceContainer container("server", clock, wal);
    dht::LocalDht ddc;
    rpc::ServiceHost host(container, ddc, {0, true, -1});
    ASSERT_TRUE(host.start().ok());
    api::RemoteServiceBus bus("127.0.0.1", host.port(), api::RemoteBusConfig{1.0, 5.0});

    transfer::TcpTransfer tcp(bus, transfer::TcpConfig{kChunk, 3, true});
    const Status put = tcp.put_file(data, in_path);
    ASSERT_TRUE(put.ok()) << put.error().to_string();
    EXPECT_EQ(tcp.stats().resumes, 1);
    EXPECT_EQ(tcp.stats().bytes_sent, data.size - kStaged);  // only the tail moved

    const std::string out_path = (dir / "out.bin").string();
    const Status got = tcp.get_file(data, out_path);
    ASSERT_TRUE(got.ok()) << got.error().to_string();
    std::ifstream in(out_path, std::ios::binary);
    const std::string roundtripped{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
    EXPECT_EQ(roundtripped, payload);
    host.stop();
  }
  std::filesystem::remove_all(dir);
}

TEST(DataPlane, MidStreamCorruptionOverSocketFailsChecksum) {
  DataPlaneRig rig;
  api::RemoteServiceBus bus("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 5.0});
  const std::string payload = rig.make_payload(65536);
  const std::string in_path = rig.write_file("in.bin", payload);
  const core::Data data = rig.register_data(bus, "payload", in_path);

  std::optional<api::Expected<std::int64_t>> started;
  bus.dr_put_start(data, [&](auto reply) { started = std::move(reply); });
  ASSERT_TRUE(started->ok());
  std::string corrupted = payload;
  corrupted[40000] = static_cast<char>(corrupted[40000] ^ 0x01);  // one flipped bit
  for (std::int64_t at = 0; at < 65536; at += 16384) {
    std::optional<Status> sent;
    bus.dr_put_chunk(data.uid, at, corrupted.substr(static_cast<std::size_t>(at), 16384),
                     [&](Status s) { sent = s; });
    ASSERT_TRUE(sent->ok());
  }
  std::optional<api::Expected<core::Locator>> committed;
  bus.dr_put_commit(data.uid, "tcp", [&](auto reply) { committed = std::move(reply); });
  EXPECT_EQ(committed->code(), Errc::kChecksumMismatch);
  EXPECT_TRUE(rig.alive());
}

TEST(DataPlane, ConcurrentPutAndGetOfTheSameUid) {
  DataPlaneRig rig;
  api::RemoteServiceBus setup("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 5.0});
  const std::string payload = rig.make_payload(100000);
  const std::string in_path = rig.write_file("in.bin", payload);
  const core::Data data = rig.register_data(setup, "contended", in_path);
  {
    transfer::TcpTransfer tcp(setup, transfer::TcpConfig{16 * 1024, 3, false});
    ASSERT_TRUE(tcp.put_file(data, in_path).ok());
  }

  // One writer re-putting the uid, one reader getting it, each on its own
  // connection. Every get must be either a typed failure or byte-identical
  // content — never a torn read, never a crash.
  std::atomic<int> good_gets{0};
  std::thread writer([&] {
    api::RemoteServiceBus bus("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 5.0});
    transfer::TcpTransfer tcp(bus, transfer::TcpConfig{8 * 1024, 3, false});
    for (int round = 0; round < 3; ++round) {
      const Status put = tcp.put_file(data, in_path);
      EXPECT_TRUE(put.ok()) << put.error().to_string();
    }
  });
  std::thread reader([&] {
    api::RemoteServiceBus bus("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 5.0});
    transfer::TcpTransfer tcp(bus, transfer::TcpConfig{8 * 1024, 3, false});
    for (int round = 0; round < 3; ++round) {
      const std::string out = (rig.dir / ("out-" + std::to_string(round) + ".bin")).string();
      const Status got = tcp.get_file(data, out);
      if (got.ok()) {
        EXPECT_EQ(rig.slurp(out), payload);
        ++good_gets;
      } else {
        EXPECT_NE(got.error().code, Errc::kOk);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_GE(good_gets.load(), 1);
  EXPECT_TRUE(rig.alive());
}

TEST(DataPlane, TransferManagerDrivesConcurrentStreams) {
  DataPlaneRig rig;
  constexpr int kStreams = 4;
  api::TransferManager tm;
  tm.set_max_concurrent(kStreams);

  struct Stream {
    core::Data data;
    std::string in_path;
    std::string out_path;
  };
  std::vector<Stream> streams;
  api::RemoteServiceBus setup("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 5.0});
  for (int i = 0; i < kStreams; ++i) {
    Stream stream;
    stream.in_path = rig.write_file("in-" + std::to_string(i) + ".bin",
                                    rig.make_payload(50000, /*salt=*/i));
    stream.out_path = (rig.dir / ("out-" + std::to_string(i) + ".bin")).string();
    stream.data = rig.register_data(setup, "stream-" + std::to_string(i), stream.in_path);
    streams.push_back(std::move(stream));
  }

  std::vector<std::thread> workers;
  for (const Stream& stream : streams) {
    workers.emplace_back([&rig, &tm, stream] {
      api::RemoteServiceBus bus("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 5.0});
      transfer::TcpTransfer tcp(bus, transfer::TcpConfig{8 * 1024, 3, true});
      tm.begin(stream.data.uid);
      Status outcome = tcp.put_file(stream.data, stream.in_path);
      if (outcome.ok()) outcome = tcp.get_file(stream.data, stream.out_path);
      tm.finish(stream.data.uid, outcome);
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(tm.active_count(), 0);
  for (const Stream& stream : streams) {
    EXPECT_EQ(tm.probe(stream.data.uid), api::TransferProbe::kDone);
    EXPECT_TRUE(tm.outcome(stream.data.uid).ok());
    EXPECT_EQ(rig.slurp(stream.out_path), rig.slurp(stream.in_path));
  }
}

TEST(DataPlane, PipelinedScalarAndChunkFramesInterleaveOnOneConnection) {
  DataPlaneRig rig;
  api::RemoteServiceBus bus("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 5.0});
  const std::string payload = rig.make_payload(64 * 1024);
  const std::string in_path = rig.write_file("in.bin", payload);
  const core::Data data = rig.register_data(bus, "payload", in_path);

  // Upload sequentially — the repository's stage offset is stateful, so
  // writes must not pipeline. Reads below are idempotent and do.
  constexpr std::int64_t kChunk = 16 * 1024;
  std::optional<api::Expected<std::int64_t>> started;
  bus.dr_put_start(data, [&](auto reply) { started = std::move(reply); });
  ASSERT_TRUE(started->ok());
  for (std::int64_t at = 0; at < data.size; at += kChunk) {
    std::optional<Status> sent;
    bus.dr_put_chunk(data.uid, at, payload.substr(static_cast<std::size_t>(at), kChunk),
                     [&](Status s) { sent = s; });
    ASSERT_TRUE(sent->ok());
  }
  std::optional<api::Expected<core::Locator>> committed;
  bus.dr_put_commit(data.uid, "tcp", [&](auto reply) { committed = std::move(reply); });
  ASSERT_TRUE(committed->ok()) << committed->error().to_string();

  // Eight calls in flight on the ONE connection: chunk reads (the zero-copy
  // fast path) interleaved with scalar ddc_publish frames. Callbacks stay
  // deferred until drain() — SimServiceBus's completion contract.
  bus.set_pipeline_depth(16);
  constexpr int kPairs = 4;
  std::vector<std::optional<api::Expected<std::string>>> chunks(kPairs);
  std::vector<std::optional<Status>> published(kPairs);
  for (int i = 0; i < kPairs; ++i) {
    bus.dr_get_chunk(data.uid, i * kChunk, kChunk,
                     [&chunks, i](api::Expected<std::string> reply) {
                       chunks[static_cast<std::size_t>(i)] = std::move(reply);
                     });
    bus.ddc_publish("pipelined-" + std::to_string(i), "v",
                    [&published, i](Status s) { published[static_cast<std::size_t>(i)] = s; });
  }
  EXPECT_EQ(bus.in_flight(), 2u * kPairs);  // genuinely deferred, none resolved yet
  bus.drain();
  EXPECT_EQ(bus.in_flight(), 0u);
  for (int i = 0; i < kPairs; ++i) {
    ASSERT_TRUE(chunks[i].has_value());
    ASSERT_TRUE(chunks[i]->ok()) << chunks[i]->error().to_string();
    EXPECT_EQ(**chunks[i], payload.substr(static_cast<std::size_t>(i) * kChunk, kChunk));
    ASSERT_TRUE(published[i].has_value());
    EXPECT_TRUE(published[i]->ok());
  }
  bus.set_pipeline_depth(1);
  EXPECT_TRUE(rig.alive());
}

TEST(DataPlane, FileBackedRemoteGetIsZeroCopy) {
  // A WAL-backed container keeps content in files (<wal>.content/), so a
  // remote get must serve every chunk as an fd slice straight onto the
  // socket: slice_reads counts them, blob_copies must stay exactly zero.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("bitdew-zerocopy-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string wal = (dir / "bitdewd.wal").string();

  util::ManualClock clock;
  services::ServiceContainer container("server", clock, wal);
  dht::LocalDht ddc;
  rpc::ServiceHost host(container, ddc, {0, true, -1});
  ASSERT_TRUE(host.start().ok());
  api::RemoteServiceBus bus("127.0.0.1", host.port(), api::RemoteBusConfig{1.0, 5.0});

  std::string payload(96 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>((i * 131 + 7) & 0xff);
  }
  const std::string in_path = (dir / "in.bin").string();
  std::ofstream(in_path, std::ios::binary) << payload;
  core::Data data;
  data.uid = util::next_auid();
  data.name = "filebacked";
  const core::Content descriptor = core::file_content(in_path);
  data.size = descriptor.size;
  data.checksum = descriptor.checksum;
  std::optional<Status> registered;
  bus.dc_register(data, [&](Status s) { registered = s; });
  ASSERT_TRUE(registered->ok());

  transfer::TcpTransfer tcp(bus, transfer::TcpConfig{16 * 1024, 3, false});
  const Status put = tcp.put_file(data, in_path);
  ASSERT_TRUE(put.ok()) << put.error().to_string();
  const std::string out_path = (dir / "out.bin").string();
  const Status got = tcp.get_file(data, out_path);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  std::ifstream round(out_path, std::ios::binary);
  const std::string roundtripped{std::istreambuf_iterator<char>(round),
                                 std::istreambuf_iterator<char>()};
  EXPECT_EQ(roundtripped, payload);

  std::optional<api::Expected<services::RepoStats>> stats;
  bus.dr_stats([&](api::Expected<services::RepoStats> reply) { stats = std::move(reply); });
  ASSERT_TRUE(stats.has_value() && stats->ok());
  EXPECT_GT((*stats)->slice_reads, 0u);   // every chunk left as an fd slice
  EXPECT_EQ((*stats)->blob_copies, 0u);   // no read materialized a blob
  host.stop();
  std::filesystem::remove_all(dir);
}

TEST(ServiceHostHardening, ManyConcurrentClients) {
  HostRig rig;
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&rig, &ok_count, c] {
      api::RemoteServiceBus bus("127.0.0.1", rig.host.port(), api::RemoteBusConfig{1.0, 2.0});
      for (int i = 0; i < 16; ++i) {
        std::optional<Status> published;
        bus.ddc_publish("client-" + std::to_string(c), "v" + std::to_string(i),
                        [&](Status s) { published = s; });
        if (published.has_value() && published->ok()) ++ok_count;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(ok_count.load(), kClients * 16);
  EXPECT_EQ(rig.ddc.key_count(), static_cast<std::size_t>(kClients));
}

}  // namespace
}  // namespace bitdew
