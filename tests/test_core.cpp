// Core model tests: the attribute DSL parser (the paper's listings must
// parse), typed attribute resolution, lifetimes and content descriptors.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/attributes.hpp"
#include "core/data.hpp"
#include "core/locator.hpp"

namespace bitdew {
namespace {

using core::AttributeError;
using core::AttributeSpec;
using core::DataAttributes;
using core::kReplicaAll;
using core::Lifetime;
using core::parse_attribute;
using core::parse_attributes;

core::DataResolver no_resolver() { return nullptr; }

/// Resolver mapping a fixed name to a fixed uid.
core::DataResolver resolver_for(const std::string& name, util::Auid uid) {
  return [name, uid](const std::string& ref) -> std::optional<util::Auid> {
    if (ref == name) return uid;
    return std::nullopt;
  };
}

TEST(AttributeParser, ParsesThePaperUpdaterExample) {
  // Listing 1: attr update = {replicat=-1, oob=bittorrent, abstime=43200}.
  // abstime stays a DURATION at parse time: the Data Scheduler anchors it
  // against its own clock when the schedule request arrives, so a lifetime
  // written on one machine means the same thing on the daemon's clock.
  const DataAttributes attributes = parse_attributes(
      "attr update = {replicat=-1, oob=bittorrent, abstime=43200}", no_resolver());
  EXPECT_EQ(attributes.name, "update");
  EXPECT_EQ(attributes.replica, kReplicaAll);
  EXPECT_EQ(attributes.protocol, "bittorrent");
  EXPECT_EQ(attributes.lifetime.kind, Lifetime::Kind::kDuration);
  EXPECT_DOUBLE_EQ(attributes.lifetime.expires_at, 43200.0);
  EXPECT_FALSE(attributes.fault_tolerant);
}

TEST(AttributeParser, ParsesThePaperBlastAttributes) {
  util::reseed_auid(5);
  const util::Auid collector = util::next_auid();
  const auto resolver = resolver_for("Collector", collector);

  // Listing 3 (spellings normalized): the four attribute sets of the
  // master/worker BLAST application.
  const DataAttributes application = parse_attributes(
      "attribute Application = {replication=-1, protocol=\"bittorrent\"}", resolver);
  EXPECT_EQ(application.replica, kReplicaAll);
  EXPECT_EQ(application.protocol, "bittorrent");

  const DataAttributes genebase = parse_attributes(
      "attribute Genebase = {protocol=\"bittorrent\", lifetime=Collector, affinity=Sequence}",
      [&](const std::string& ref) -> std::optional<util::Auid> {
        if (ref == "Collector") return collector;
        if (ref == "Sequence") return util::Auid{1, 2};
        return std::nullopt;
      });
  EXPECT_EQ(genebase.lifetime.kind, Lifetime::Kind::kRelative);
  EXPECT_EQ(genebase.lifetime.reference, collector);
  EXPECT_EQ(genebase.affinity, (util::Auid{1, 2}));
  // Affinity-placed data without an explicit replica count is affinity-only.
  EXPECT_EQ(genebase.replica, 0);

  const DataAttributes sequence = parse_attributes(
      "attribute Sequence = {fault_tolerance=true, protocol=\"http\", lifetime=Collector, "
      "replication=2}",
      resolver);
  EXPECT_TRUE(sequence.fault_tolerant);
  EXPECT_EQ(sequence.replica, 2);
  EXPECT_EQ(sequence.protocol, "http");
}

TEST(AttributeParser, UnresolvedAffinityBecomesClassAffinity) {
  // The paper's "affinity = Sequence" attracts data to hosts holding ANY
  // datum named Sequence (class affinity), when no single datum resolves.
  const DataAttributes attributes =
      parse_attributes("attr Genebase = {affinity=Sequence}", no_resolver());
  EXPECT_TRUE(attributes.affinity.is_nil());
  EXPECT_EQ(attributes.affinity_name, "Sequence");
  EXPECT_TRUE(attributes.has_affinity());
  EXPECT_EQ(attributes.replica, 0);
}

TEST(AttributeParser, AffinityByLiteralUid) {
  const util::Auid uid{0x1234, 0x5678};
  const DataAttributes attributes = parse_attributes(
      "attr host = {affinity=" + uid.str() + "}", no_resolver());
  EXPECT_EQ(attributes.affinity, uid);
}

TEST(AttributeParser, EmptyBodyIsValid) {
  // The paper's "Collector attribute {}" — an attribute with defaults.
  const AttributeSpec spec = parse_attribute("attr Collector = {}");
  EXPECT_EQ(spec.name, "Collector");
  EXPECT_TRUE(spec.fields.empty());
  const DataAttributes attributes =
      core::attributes_from_spec(spec, no_resolver());
  EXPECT_EQ(attributes.replica, 1);
  EXPECT_EQ(attributes.lifetime.kind, Lifetime::Kind::kForever);
}

TEST(AttributeParser, KeywordIsOptional) {
  const AttributeSpec spec = parse_attribute("cache = {replica=3}");
  EXPECT_EQ(spec.name, "cache");
  EXPECT_EQ(spec.field("replica"), "3");
}

struct BadInput {
  const char* text;
};

class AttributeParserRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(AttributeParserRejects, Throws) {
  EXPECT_THROW(parse_attributes(GetParam().text, no_resolver()), AttributeError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, AttributeParserRejects,
    ::testing::Values(BadInput{""}, BadInput{"attr = {}"}, BadInput{"attr a"},
                      BadInput{"attr a = "}, BadInput{"attr a = {replica}"},
                      BadInput{"attr a = {replica=}"}, BadInput{"attr a = {replica=1"},
                      BadInput{"attr a = {replica=x}"}, BadInput{"attr a = {replica=-2}"},
                      BadInput{"attr a = {abstime=-5}"}, BadInput{"attr a = {bogus=1}"},
                      BadInput{"attr a = {ft=maybe}"}, BadInput{"attr a = {lifetime=unknown}"},
                      BadInput{"attr a = {oob='ftp}"}, BadInput{"attr a = {} trailing"}));

TEST(AttributeParser, BooleanSpellings) {
  EXPECT_TRUE(parse_attributes("a={ft=true}", no_resolver()).fault_tolerant);
  EXPECT_TRUE(parse_attributes("a={ft=1}", no_resolver()).fault_tolerant);
  EXPECT_TRUE(parse_attributes("a={ft=yes}", no_resolver()).fault_tolerant);
  EXPECT_FALSE(parse_attributes("a={ft=false}", no_resolver()).fault_tolerant);
  EXPECT_FALSE(parse_attributes("a={ft=0}", no_resolver()).fault_tolerant);
}

TEST(AttributeParser, QuotedValuesAndSpacing) {
  const DataAttributes attributes = parse_attributes(
      "  attr   spaced = {  oob = \"BitTorrent\" ,replica= 4 }  ", no_resolver());
  EXPECT_EQ(attributes.protocol, "bittorrent");  // normalized to lower case
  EXPECT_EQ(attributes.replica, 4);
}

TEST(Lifetime, Factories) {
  EXPECT_EQ(Lifetime::forever().kind, Lifetime::Kind::kForever);
  const auto absolute = Lifetime::absolute(17.5);
  EXPECT_EQ(absolute.kind, Lifetime::Kind::kAbsolute);
  EXPECT_DOUBLE_EQ(absolute.expires_at, 17.5);
  const auto relative = Lifetime::relative(util::Auid{1, 1});
  EXPECT_EQ(relative.kind, Lifetime::Kind::kRelative);
  EXPECT_EQ(relative.reference, (util::Auid{1, 1}));
}

TEST(Content, SyntheticIsDeterministic) {
  const auto a = core::synthetic_content(7, 1000);
  const auto b = core::synthetic_content(7, 1000);
  const auto c = core::synthetic_content(8, 1000);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_NE(a.checksum, c.checksum);
  EXPECT_EQ(a.size, 1000);
  EXPECT_EQ(a.checksum.size(), 32u);
}

TEST(Content, FileContentMatchesMd5) {
  const std::string path = "/tmp/bitdew-content-test.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "abc";
  }
  const auto content = core::file_content(path);
  EXPECT_EQ(content.size, 3);
  EXPECT_EQ(content.checksum, "900150983cd24fb0d6963f7d28e17f72");
  std::remove(path.c_str());
  EXPECT_THROW(core::file_content(path), std::runtime_error);
}

TEST(Locator, UrlRendering) {
  core::Locator locator;
  locator.protocol = "ftp";
  locator.host = "gdx-server";
  locator.path = "store/abc";
  EXPECT_EQ(locator.url(), "ftp://gdx-server/store/abc");
}

TEST(Data, FlagsCombine) {
  core::Data data;
  data.flags = core::kFlagCompressed | core::kFlagExecutable;
  EXPECT_TRUE(data.flags & core::kFlagCompressed);
  EXPECT_TRUE(data.flags & core::kFlagExecutable);
  EXPECT_FALSE(data.flags & core::kFlagArchDependent);
  EXPECT_FALSE(data.valid());
}

}  // namespace
}  // namespace bitdew
