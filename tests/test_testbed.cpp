// Testbed preset tests: the cluster builder, the Table 1 Grid'5000 slice
// and the DSL-Lab ADSL topology must produce the shapes the benches assume.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "testbed/topologies.hpp"

namespace bitdew {
namespace {

TEST(Testbed, ClusterHasNamedHosts) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto cluster = testbed::make_cluster(net, testbed::ClusterSpec{"gdx", 5});
  ASSERT_EQ(cluster.hosts.size(), 5u);
  EXPECT_EQ(net.host_name(cluster.hosts[0]), "gdx-0");
  EXPECT_EQ(net.host_name(cluster.hosts[4]), "gdx-4");
  EXPECT_EQ(net.host_count(), 5u);
  // Intra-cluster latency is LAN-scale.
  EXPECT_LT(net.one_way_latency(cluster.hosts[0], cluster.hosts[1]), 1e-3);
}

TEST(Testbed, Grid5000MatchesTable1AtFullScale) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto grid = testbed::make_grid5000(net, 1.0);
  ASSERT_EQ(grid.clusters.size(), 4u);
  EXPECT_EQ(grid.clusters[0].name, "gdx");
  EXPECT_EQ(grid.clusters[0].hosts.size(), 312u);  // Table 1
  EXPECT_EQ(grid.clusters[1].name, "grelon");
  EXPECT_EQ(grid.clusters[1].hosts.size(), 120u);
  EXPECT_EQ(grid.clusters[2].name, "grillon");
  EXPECT_EQ(grid.clusters[2].hosts.size(), 47u);
  EXPECT_EQ(grid.clusters[3].name, "sagittaire");
  EXPECT_EQ(grid.clusters[3].hosts.size(), 65u);
  EXPECT_EQ(grid.all_hosts().size(), 544u);
  // CPU speeds follow Table 1 (grelon is the slow Xeon cluster).
  EXPECT_LT(grid.clusters[1].cpu_ghz, grid.clusters[3].cpu_ghz);
}

TEST(Testbed, Grid5000ScalesDown) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto grid = testbed::make_grid5000(net, 0.1);
  EXPECT_EQ(grid.clusters[0].hosts.size(), 31u);  // round(312 * 0.1)
  EXPECT_GE(grid.clusters[2].hosts.size(), 1u);   // never empty
}

TEST(Testbed, Grid5000InterSiteLatencyIsWanScale) {
  sim::Simulator sim(1);
  net::Network net(sim);
  const auto grid = testbed::make_grid5000(net, 0.05);
  const auto gdx = grid.clusters[0].hosts[0];
  const auto grelon = grid.clusters[1].hosts[0];
  const auto same_site = grid.clusters[0].hosts[1];
  EXPECT_GT(net.one_way_latency(gdx, grelon), 1e-3);   // WAN
  EXPECT_LT(net.one_way_latency(gdx, same_site), 1e-3);  // LAN
}

TEST(Testbed, DslLabIsAsymmetricAndJittered) {
  sim::Simulator sim(7);
  net::Network net(sim);
  const auto lab = testbed::make_dsllab(net, sim.rng(), 12);
  ASSERT_EQ(lab.nodes.size(), 12u);
  EXPECT_EQ(net.host_name(lab.nodes[0]), "DSL01");

  // ADSL: the server reaches nodes across a WAN-scale last mile.
  EXPECT_GT(net.one_way_latency(lab.server, lab.nodes[0]), 10e-3);

  // Download capacity varies across providers: transfer the same payload to
  // two nodes and require different completion times.
  double t1 = 0;
  double t2 = 0;
  net.start_flow(lab.server, lab.nodes[0], 500000,
                 [&](const net::FlowResult& r) { t1 = r.finished_at; });
  net.start_flow(lab.server, lab.nodes[5], 500000,
                 [&](const net::FlowResult& r) { t2 = r.finished_at; });
  sim.run();
  EXPECT_GT(t1, 0);
  EXPECT_GT(t2, 0);
  EXPECT_NE(t1, t2);

  // Uplink is much thinner than downlink: pushing the same payload back
  // takes several times longer.
  double up = 0;
  net.start_flow(lab.nodes[0], lab.server, 500000,
                 [&](const net::FlowResult& r) { up = r.finished_at - r.started_at; });
  sim.run();
  EXPECT_GT(up, (t1 > 0 ? t1 : 1) * 1.5);
}

TEST(Testbed, DslLabDeterministicPerSeed) {
  auto build = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    net::Network net(sim);
    const auto lab = testbed::make_dsllab(net, sim.rng(), 4);
    double total_latency = 0;
    for (const auto node : lab.nodes) total_latency += net.one_way_latency(lab.server, node);
    return total_latency;
  };
  EXPECT_DOUBLE_EQ(build(3), build(3));
  EXPECT_NE(build(3), build(4));
}

}  // namespace
}  // namespace bitdew
