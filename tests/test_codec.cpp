// Codec tests: typed round-trips, property-style randomized round-trips and
// malformed-input behaviour (the wire protocols rely on CodecError).
#include <gtest/gtest.h>

#include "rpc/codec.hpp"
#include "util/rng.hpp"

namespace bitdew {
namespace {

TEST(Codec, ScalarRoundTrip) {
  rpc::Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  rpc::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, UnderflowThrows) {
  rpc::Writer w;
  w.u32(7);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), rpc::CodecError);
}

TEST(Codec, StringWithBogusLengthThrows) {
  rpc::Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  rpc::Reader r(w.buffer());
  EXPECT_THROW(r.str(), rpc::CodecError);
}

TEST(Codec, EmbeddedNulBytesSurvive) {
  rpc::Writer w;
  const std::string payload("a\0b\0c", 5);
  w.str(payload);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(r.str(), payload);
}

TEST(Codec, TakeResetsWriter) {
  rpc::Writer w;
  w.u8(1);
  const std::string first = w.take();
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(w.size(), 0u);
  w.u8(2);
  EXPECT_EQ(w.size(), 1u);
}

// Property: a randomized sequence of typed writes reads back identically.
class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, RandomSequencesRoundTrip) {
  util::Rng rng(GetParam());
  enum class Kind { kU8, kU32, kU64, kI64, kF64, kBool, kStr };
  std::vector<Kind> plan;
  std::vector<std::uint64_t> ints;
  std::vector<double> reals;
  std::vector<std::string> strings;

  rpc::Writer w;
  const int ops = 1 + static_cast<int>(rng.below(200));
  for (int i = 0; i < ops; ++i) {
    const auto kind = static_cast<Kind>(rng.below(7));
    plan.push_back(kind);
    switch (kind) {
      case Kind::kU8: {
        const auto v = rng.below(256);
        ints.push_back(v);
        w.u8(static_cast<std::uint8_t>(v));
        break;
      }
      case Kind::kU32: {
        const auto v = rng() & 0xffffffffu;
        ints.push_back(v);
        w.u32(static_cast<std::uint32_t>(v));
        break;
      }
      case Kind::kU64: {
        const auto v = rng();
        ints.push_back(v);
        w.u64(v);
        break;
      }
      case Kind::kI64: {
        const auto v = static_cast<std::int64_t>(rng());
        ints.push_back(static_cast<std::uint64_t>(v));
        w.i64(v);
        break;
      }
      case Kind::kF64: {
        const double v = rng.uniform(-1e9, 1e9);
        reals.push_back(v);
        w.f64(v);
        break;
      }
      case Kind::kBool: {
        const bool v = rng.chance(0.5);
        ints.push_back(v ? 1 : 0);
        w.boolean(v);
        break;
      }
      case Kind::kStr: {
        std::string s;
        const auto len = rng.below(64);
        for (std::uint64_t j = 0; j < len; ++j) {
          s.push_back(static_cast<char>(rng.below(256)));
        }
        strings.push_back(s);
        w.str(s);
        break;
      }
    }
  }

  rpc::Reader r(w.buffer());
  std::size_t ii = 0;
  std::size_t ri = 0;
  std::size_t si = 0;
  for (const Kind kind : plan) {
    switch (kind) {
      case Kind::kU8: EXPECT_EQ(r.u8(), ints[ii++]); break;
      case Kind::kU32: EXPECT_EQ(r.u32(), ints[ii++]); break;
      case Kind::kU64: EXPECT_EQ(r.u64(), ints[ii++]); break;
      case Kind::kI64: EXPECT_EQ(static_cast<std::uint64_t>(r.i64()), ints[ii++]); break;
      case Kind::kF64: EXPECT_DOUBLE_EQ(r.f64(), reals[ri++]); break;
      case Kind::kBool: EXPECT_EQ(r.boolean() ? 1u : 0u, ints[ii++]); break;
      case Kind::kStr: EXPECT_EQ(r.str(), strings[si++]); break;
    }
  }
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace bitdew
