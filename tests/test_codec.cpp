// Codec tests: typed round-trips, property-style randomized round-trips and
// malformed-input behaviour (the wire protocols rely on CodecError).
#include <gtest/gtest.h>

#include <string_view>
#include <type_traits>

#include "rpc/codec.hpp"
#include "rpc/wire.hpp"
#include "util/rng.hpp"

namespace bitdew {
namespace {

TEST(Codec, ScalarRoundTrip) {
  rpc::Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  rpc::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, UnderflowThrows) {
  rpc::Writer w;
  w.u32(7);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), rpc::CodecError);
}

TEST(Codec, StringWithBogusLengthThrows) {
  rpc::Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  rpc::Reader r(w.buffer());
  EXPECT_THROW(r.str(), rpc::CodecError);
}

TEST(Codec, EmbeddedNulBytesSurvive) {
  rpc::Writer w;
  const std::string payload("a\0b\0c", 5);
  w.str(payload);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(r.str(), payload);
}

TEST(Codec, TakeResetsWriter) {
  rpc::Writer w;
  w.u8(1);
  const std::string first = w.take();
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(w.size(), 0u);
  w.u8(2);
  EXPECT_EQ(w.size(), 1u);
}

// Property: a randomized sequence of typed writes reads back identically.
class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, RandomSequencesRoundTrip) {
  util::Rng rng(GetParam());
  enum class Kind { kU8, kU32, kU64, kI64, kF64, kBool, kStr };
  std::vector<Kind> plan;
  std::vector<std::uint64_t> ints;
  std::vector<double> reals;
  std::vector<std::string> strings;

  rpc::Writer w;
  const int ops = 1 + static_cast<int>(rng.below(200));
  for (int i = 0; i < ops; ++i) {
    const auto kind = static_cast<Kind>(rng.below(7));
    plan.push_back(kind);
    switch (kind) {
      case Kind::kU8: {
        const auto v = rng.below(256);
        ints.push_back(v);
        w.u8(static_cast<std::uint8_t>(v));
        break;
      }
      case Kind::kU32: {
        const auto v = rng() & 0xffffffffu;
        ints.push_back(v);
        w.u32(static_cast<std::uint32_t>(v));
        break;
      }
      case Kind::kU64: {
        const auto v = rng();
        ints.push_back(v);
        w.u64(v);
        break;
      }
      case Kind::kI64: {
        const auto v = static_cast<std::int64_t>(rng());
        ints.push_back(static_cast<std::uint64_t>(v));
        w.i64(v);
        break;
      }
      case Kind::kF64: {
        const double v = rng.uniform(-1e9, 1e9);
        reals.push_back(v);
        w.f64(v);
        break;
      }
      case Kind::kBool: {
        const bool v = rng.chance(0.5);
        ints.push_back(v ? 1 : 0);
        w.boolean(v);
        break;
      }
      case Kind::kStr: {
        std::string s;
        const auto len = rng.below(64);
        for (std::uint64_t j = 0; j < len; ++j) {
          s.push_back(static_cast<char>(rng.below(256)));
        }
        strings.push_back(s);
        w.str(s);
        break;
      }
    }
  }

  rpc::Reader r(w.buffer());
  std::size_t ii = 0;
  std::size_t ri = 0;
  std::size_t si = 0;
  for (const Kind kind : plan) {
    switch (kind) {
      case Kind::kU8: EXPECT_EQ(r.u8(), ints[ii++]); break;
      case Kind::kU32: EXPECT_EQ(r.u32(), ints[ii++]); break;
      case Kind::kU64: EXPECT_EQ(r.u64(), ints[ii++]); break;
      case Kind::kI64: EXPECT_EQ(static_cast<std::uint64_t>(r.i64()), ints[ii++]); break;
      case Kind::kF64: EXPECT_DOUBLE_EQ(r.f64(), reals[ri++]); break;
      case Kind::kBool: EXPECT_EQ(r.boolean() ? 1u : 0u, ints[ii++]); break;
      case Kind::kStr: EXPECT_EQ(r.str(), strings[si++]); break;
    }
  }
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- ServiceBus v2 wire shapes ----------------------------------------------

core::Data wire_data(int i) {
  core::Data data;
  data.uid = util::Auid{0x1111, static_cast<std::uint64_t>(i)};
  data.name = "datum-" + std::to_string(i);
  data.checksum = "00112233445566778899aabbccddeeff";
  data.size = 1024 * i;
  data.flags = core::kFlagCompressed;
  return data;
}

TEST(Wire, ModelTypesRoundTrip) {
  rpc::Writer w;
  const core::Data data = wire_data(7);
  core::Locator locator;
  locator.data_uid = data.uid;
  locator.protocol = "ftp";
  locator.host = "server1";
  locator.path = "store/x";
  locator.credentials = "user:pass";
  core::DataAttributes attributes;
  attributes.name = "hot";
  attributes.replica = core::kReplicaAll;
  attributes.fault_tolerant = true;
  attributes.lifetime = core::Lifetime::relative(util::Auid{3, 4});
  attributes.affinity = util::Auid{5, 6};
  attributes.affinity_name = "Sequence";
  attributes.protocol = "bittorrent";

  rpc::wire::write_data(w, data);
  rpc::wire::write_locator(w, locator);
  rpc::wire::write_attributes(w, attributes);

  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_data(r), data);
  EXPECT_EQ(rpc::wire::read_locator(r), locator);
  EXPECT_EQ(rpc::wire::read_attributes(r), attributes);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, StatusAndErrorRoundTrip) {
  rpc::Writer w;
  rpc::wire::write_status(w, api::ok_status());
  rpc::wire::write_status(
      w, api::Status(api::Error{api::Errc::kDuplicate, "dc", "already there"}));

  rpc::Reader r(w.buffer());
  const api::Status ok = rpc::wire::read_status(r);
  const api::Status failed = rpc::wire::read_status(r);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(failed.code(), api::Errc::kDuplicate);
  EXPECT_EQ(failed.error().service, "dc");
  EXPECT_EQ(failed.error().message, "already there");
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, BatchMessagesRoundTrip) {
  std::vector<core::Data> items{wire_data(1), wire_data(2), wire_data(3)};
  std::vector<util::Auid> uids{items[0].uid, items[1].uid};
  std::vector<std::pair<std::string, std::string>> pairs{{"k1", "v1"}, {"k2", "v2"}};

  rpc::Writer w;
  rpc::wire::write_register_batch(w, items);
  rpc::wire::write_locators_batch_request(w, uids);
  rpc::wire::write_publish_batch(w, pairs);
  rpc::wire::write_status_batch(
      w, {api::ok_status(), api::Status(api::Error{api::Errc::kRejected, "ds", "bad"})});

  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_register_batch(r), items);
  EXPECT_EQ(rpc::wire::read_locators_batch_request(r), uids);
  EXPECT_EQ(rpc::wire::read_publish_batch(r), pairs);
  const auto statuses = rpc::wire::read_status_batch(r);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(statuses[1].code(), api::Errc::kRejected);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, LocatorsBatchReplyRoundTrip) {
  core::Locator locator;
  locator.data_uid = util::Auid{1, 2};
  locator.protocol = "http";
  locator.host = "h";
  locator.path = "p";
  std::vector<api::Expected<std::vector<core::Locator>>> reply;
  reply.push_back(std::vector<core::Locator>{locator});
  reply.push_back(api::Error{api::Errc::kNotFound, "dc", "unknown"});

  rpc::Writer w;
  rpc::wire::write_locators_batch_reply(w, reply);
  rpc::Reader r(w.buffer());
  const auto decoded = rpc::wire::read_locators_batch_reply(r);
  ASSERT_EQ(decoded.size(), 2u);
  ASSERT_TRUE(decoded[0].ok());
  EXPECT_EQ(decoded[0]->front(), locator);
  EXPECT_EQ(decoded[1].code(), api::Errc::kNotFound);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, ScheduleBatchRoundTripAndSizing) {
  std::vector<std::pair<core::Data, core::DataAttributes>> items;
  core::DataAttributes attributes;
  attributes.replica = 2;
  items.emplace_back(wire_data(1), attributes);
  items.emplace_back(wire_data(2), attributes);

  rpc::Writer w;
  rpc::wire::write_schedule_batch(w, items);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_schedule_batch(r), items);
  EXPECT_TRUE(r.exhausted());
  // The sizing helper agrees with the actual encoding.
  EXPECT_EQ(rpc::wire::schedule_batch_bytes(items), static_cast<std::int64_t>(w.size()));
}

TEST(Wire, FrameHeaderRoundTrip) {
  rpc::Writer w;
  rpc::wire::write_frame_header(w, {rpc::wire::Endpoint::kDsScheduleBatch, 0xfeedfacecafe});
  EXPECT_EQ(w.size(), rpc::wire::kFrameHeaderBytes);
  rpc::Reader r(w.buffer());
  const rpc::wire::FrameHeader header = rpc::wire::read_frame_header(r);
  EXPECT_EQ(header.endpoint, rpc::wire::Endpoint::kDsScheduleBatch);
  EXPECT_EQ(header.request_id, 0xfeedfacecafeULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, UnknownEndpointThrows) {
  rpc::Writer w;
  w.u16(rpc::wire::kMaxEndpoint + 1);
  w.u64(1);
  rpc::Reader r(w.buffer());
  EXPECT_THROW(rpc::wire::read_frame_header(r), rpc::CodecError);
}

TEST(Wire, ScalarShapesRoundTrip) {
  const core::Content content{123456, "00112233445566778899aabbccddeeff"};
  services::ScheduledData scheduled;
  scheduled.data = wire_data(9);
  scheduled.attributes.replica = 3;
  scheduled.attributes.fault_tolerant = true;
  services::SyncReply sync;
  sync.keep = {util::Auid{1, 2}, util::Auid{3, 4}};
  sync.download = {scheduled};
  sync.drop = {util::Auid{5, 6}};
  core::Locator peer;
  peer.data_uid = scheduled.data.uid;
  peer.protocol = "p2p";
  peer.host = "10.0.0.9:7100";
  peer.path = "w3";
  sync.sources = {{peer}};

  rpc::Writer w;
  rpc::wire::write_content(w, content);
  rpc::wire::write_scheduled_data(w, scheduled);
  rpc::wire::write_sync_reply(w, sync);
  rpc::wire::write_string_list(w, {"alpha", "", "beta"});

  rpc::Reader r(w.buffer());
  const core::Content decoded_content = rpc::wire::read_content(r);
  EXPECT_EQ(decoded_content.size, content.size);
  EXPECT_EQ(decoded_content.checksum, content.checksum);
  const services::ScheduledData decoded_scheduled = rpc::wire::read_scheduled_data(r);
  EXPECT_EQ(decoded_scheduled.data, scheduled.data);
  EXPECT_EQ(decoded_scheduled.attributes, scheduled.attributes);
  const services::SyncReply decoded_sync = rpc::wire::read_sync_reply(r);
  EXPECT_EQ(decoded_sync.keep, sync.keep);
  ASSERT_EQ(decoded_sync.download.size(), 1u);
  EXPECT_EQ(decoded_sync.download[0].data, scheduled.data);
  EXPECT_EQ(decoded_sync.drop, sync.drop);
  ASSERT_EQ(decoded_sync.sources.size(), 1u);
  ASSERT_EQ(decoded_sync.sources[0].size(), 1u);
  EXPECT_EQ(decoded_sync.sources[0][0], peer);
  const std::vector<std::string> strings = rpc::wire::read_string_list(r);
  EXPECT_EQ(strings, (std::vector<std::string>{"alpha", "", "beta"}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, HostListRoundTrip) {
  const std::vector<services::HostInfo> hosts = {
      {"w0", 0.25, true, 3, "10.0.0.2:7100"},
      {"w1", 7.5, false, 0, ""},  // dead, never served peers
      {"", 0.0, true, 42, "e"},   // degenerate fields survive the wire
  };
  rpc::Writer w;
  rpc::wire::write_host_list(w, hosts);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_host_list(r), hosts);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, SyncRequestV2RoundTrip) {
  services::SyncRequest request;
  request.host = "w7";
  request.epoch = 0x1122334455667788ULL;
  request.full = false;
  request.added = {util::Auid{1, 2}, util::Auid{3, 4}};
  request.removed = {util::Auid{5, 6}};
  request.in_flight = {util::Auid{7, 8}};
  request.endpoint = "10.0.0.7:7100";
  rpc::Writer w;
  rpc::wire::write_sync_request(w, request);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_sync_request(r), request);
  EXPECT_TRUE(r.exhausted());

  // A full report (empty deltas, epoch 0) survives too.
  services::SyncRequest full;
  full.host = "w8";
  full.full = true;
  full.added = {util::Auid{9, 9}};
  rpc::Writer wf;
  rpc::wire::write_sync_request(wf, full);
  rpc::Reader rf(wf.buffer());
  EXPECT_EQ(rpc::wire::read_sync_request(rf), full);
}

TEST(Wire, SyncReplyCarriesEpochAndResync) {
  services::SyncReply reply;
  reply.epoch = 42;
  reply.resync = true;
  reply.keep = {util::Auid{1, 1}};
  rpc::Writer w;
  rpc::wire::write_sync_reply(w, reply);
  rpc::Reader r(w.buffer());
  const services::SyncReply decoded = rpc::wire::read_sync_reply(r);
  EXPECT_EQ(decoded.epoch, 42u);
  EXPECT_TRUE(decoded.resync);
  EXPECT_EQ(decoded.keep, reply.keep);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, HostInfoCarriesSyncProtocolCounters) {
  services::HostInfo info;
  info.name = "w0";
  info.last_sync_age_s = 0.5;
  info.alive = true;
  info.cached = 16;
  info.endpoint = "10.0.0.2:7100";
  info.full_syncs = 3;
  info.delta_syncs = 1200;
  info.last_delta_items = 7;
  rpc::Writer w;
  rpc::wire::write_host_info(w, info);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_host_info(r), info);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, MixedVersionSyncRequestRejectedTyped) {
  // A v1-generation client's frame body (host, cache list, in-flight list,
  // endpoint — no version byte) must be refused as CodecError, which the
  // server dispatch converts into a typed kRejected reply. The first byte a
  // v1 frame presents is the low byte of the host-string length prefix, so
  // anything but kSyncRequestWireVersion throws before field parsing.
  rpc::Writer legacy;
  legacy.str("w1");
  rpc::wire::write_auid_list(legacy, {util::Auid{1, 2}});
  rpc::wire::write_auid_list(legacy, {});
  legacy.str("10.0.0.1:7100");
  rpc::Reader r(legacy.buffer());
  EXPECT_THROW(rpc::wire::read_sync_request(r), rpc::CodecError);

  // An explicit foreign version byte is refused the same way.
  rpc::Writer future;
  future.u8(rpc::wire::kSyncRequestWireVersion + 1);
  future.str("w1");
  rpc::Reader fr(future.buffer());
  EXPECT_THROW(rpc::wire::read_sync_request(fr), rpc::CodecError);
}

TEST(Wire, SyncRequestTruncationThrowsAtEveryCut) {
  services::SyncRequest request;
  request.host = "worker-17";
  request.epoch = 99;
  request.full = false;
  request.added = {util::Auid{1, 2}, util::Auid{3, 4}};
  request.removed = {util::Auid{5, 6}};
  request.in_flight = {util::Auid{7, 8}};
  request.endpoint = "10.0.0.7:7100";
  rpc::Writer w;
  rpc::wire::write_sync_request(w, request);
  const std::string& encoded = w.buffer();
  // The decoder consumes the exact encoding, so every proper prefix must
  // fail typed — never crash, never return a half-parsed request.
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    rpc::Reader r(std::string_view(encoded.data(), cut));
    EXPECT_THROW(rpc::wire::read_sync_request(r), rpc::CodecError) << "cut=" << cut;
  }
}

TEST(Wire, MisalignedSyncSourcesAreATypedDecodeError) {
  // sources is per-download-item; a count that disagrees with the download
  // partition must be rejected as malformed, not silently accepted.
  services::SyncReply sync;
  sync.download = {services::ScheduledData{wire_data(1), {}}};
  rpc::Writer w;
  rpc::wire::write_auid_list(w, sync.keep);
  rpc::Writer downloads;
  rpc::wire::write_scheduled_data(downloads, sync.download[0]);
  w.u32(1);
  w.append_raw(downloads.buffer());
  rpc::wire::write_auid_list(w, sync.drop);
  rpc::wire::write_source_lists(w, {});  // 0 lists for 1 download
  rpc::Reader r(w.buffer());
  EXPECT_THROW(rpc::wire::read_sync_reply(r), rpc::CodecError);
}

TEST(Wire, DurationLifetimeRoundTrip) {
  // The DSL's abstime travels as an UNANCHORED duration (kind=kDuration);
  // the scheduler anchors it at receipt. The kind must survive the wire.
  core::DataAttributes attributes;
  attributes.name = "update";
  attributes.replica = core::kReplicaAll;
  attributes.lifetime = core::Lifetime::duration(43200.0);
  rpc::Writer w;
  rpc::wire::write_attributes(w, attributes);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_attributes(r), attributes);
  EXPECT_TRUE(r.exhausted());

  // One past kDuration is still a typed decode error.
  rpc::Writer bad;
  bad.str("x");
  bad.i64(1);
  bad.boolean(false);
  bad.u8(static_cast<std::uint8_t>(core::Lifetime::Kind::kDuration) + 1);
  rpc::Reader br(bad.buffer());
  EXPECT_THROW(rpc::wire::read_attributes(br), rpc::CodecError);
}

TEST(Wire, RepoStatsRoundTrip) {
  services::RepoStats stats;
  stats.objects = 12;
  stats.stored_bytes = 1234567;
  stats.chunk_reads = 987;
  stats.chunk_read_bytes = 7654321;
  rpc::Writer w;
  rpc::wire::write_repo_stats(w, stats);
  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_repo_stats(r), stats);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, ExpectedPayloadRoundTrip) {
  rpc::Writer w;
  rpc::wire::write_expected(w, api::Expected<core::Data>(wire_data(3)), rpc::wire::write_data);
  rpc::wire::write_expected(
      w, api::Expected<core::Data>(api::Error{api::Errc::kNotFound, "dc", "gone"}),
      rpc::wire::write_data);

  rpc::Reader r(w.buffer());
  const auto ok = rpc::wire::read_expected<core::Data>(r, rpc::wire::read_data);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, wire_data(3));
  const auto failed = rpc::wire::read_expected<core::Data>(r, rpc::wire::read_data);
  EXPECT_EQ(failed.code(), api::Errc::kNotFound);
  EXPECT_TRUE(r.exhausted());
}

/// Fuzz the frame decoders the ServiceHost relies on: random garbage must
/// either decode or throw CodecError — never crash, never hang.
TEST(Wire, FuzzedGarbageEitherDecodesOrThrowsTyped) {
  util::Rng rng(0xdec0de);
  for (int round = 0; round < 500; ++round) {
    std::string garbage;
    const std::uint64_t length = rng.below(128);
    for (std::uint64_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.below(256)));
    }
    const auto probe = [&](auto&& decode) {
      rpc::Reader r(garbage);
      try {
        decode(r);
      } catch (const rpc::CodecError&) {
        // typed failure is the expected outcome for most inputs
      }
    };
    probe([](rpc::Reader& r) { rpc::wire::read_frame_header(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_attributes(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_status(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_sync_request(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_sync_reply(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_host_info(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_register_batch(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_locators_batch_reply(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_status_batch(r); });
  }
}

// --- live ring frames --------------------------------------------------------

rpc::wire::RingNode ring_node(std::uint64_t id, const std::string& endpoint) {
  rpc::wire::RingNode node;
  node.id = id;
  node.endpoint = endpoint;
  return node;
}

TEST(Wire, RingFramesRoundTrip) {
  namespace wire = rpc::wire;

  const wire::RingNode node = ring_node(0xfeedfacecafebeefULL, "10.0.0.7:9328");
  {
    rpc::Writer w;
    wire::write_ring_node(w, node);
    rpc::Reader r(w.buffer());
    EXPECT_EQ(wire::read_ring_node(r), node);
    EXPECT_TRUE(r.exhausted());
  }

  wire::RingLookupReply lookup;
  lookup.done = true;
  lookup.node = node;
  {
    rpc::Writer w;
    wire::write_ring_lookup_reply(w, lookup);
    rpc::Reader r(w.buffer());
    EXPECT_EQ(wire::read_ring_lookup_reply(r), lookup);
    EXPECT_TRUE(r.exhausted());
  }

  wire::RingOp op;
  op.endpoint = wire::Endpoint::kDdcPublish;
  op.body = std::string("k\0v", 3);  // bodies are opaque bytes, NULs included
  wire::RingJoinReply join;
  join.self = node;
  join.has_pred = true;
  join.pred = ring_node(1, "10.0.0.1:9328");
  join.successors = {node, ring_node(2, "10.0.0.2:9328")};
  join.handoff = {op, {wire::Endpoint::kDcRegister, "payload"}};
  {
    rpc::Writer w;
    wire::write_ring_join_reply(w, join);
    rpc::Reader r(w.buffer());
    EXPECT_EQ(wire::read_ring_join_reply(r), join);
    EXPECT_TRUE(r.exhausted());
  }

  wire::RingStabilizeReply stabilize;
  stabilize.has_pred = false;
  stabilize.successors = {ring_node(3, "a:1"), ring_node(4, "b:2")};
  {
    rpc::Writer w;
    wire::write_ring_stabilize_reply(w, stabilize);
    rpc::Reader r(w.buffer());
    EXPECT_EQ(wire::read_ring_stabilize_reply(r), stabilize);
    EXPECT_TRUE(r.exhausted());
  }

  wire::RingStoreRequest store;
  store.replicate = true;
  store.ops = {op};
  {
    rpc::Writer w;
    wire::write_ring_store_request(w, store);
    rpc::Reader r(w.buffer());
    EXPECT_EQ(wire::read_ring_store_request(r), store);
    EXPECT_TRUE(r.exhausted());
  }

  wire::RingLeaveRequest leave;
  leave.leaver = node;
  leave.has_pred = true;
  leave.pred = ring_node(9, "c:3");
  {
    rpc::Writer w;
    wire::write_ring_leave_request(w, leave);
    rpc::Reader r(w.buffer());
    EXPECT_EQ(wire::read_ring_leave_request(r), leave);
    EXPECT_TRUE(r.exhausted());
  }

  wire::RingStatusInfo info;
  info.self = node;
  info.has_pred = true;
  info.pred = ring_node(5, "d:4");
  info.successors = {ring_node(6, "e:5")};
  info.fingers_resolved = 12;
  info.fingers_total = 96;
  info.dc_keys = 1234;
  info.ddc_keys = 99;
  {
    rpc::Writer w;
    wire::write_ring_status_info(w, info);
    rpc::Reader r(w.buffer());
    EXPECT_EQ(wire::read_ring_status_info(r), info);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Wire, RingOpRejectsIllegalEndpoint) {
  namespace wire = rpc::wire;
  // Only the keyed mutating endpoints may ride inside a kRingStore frame; a
  // handcrafted op naming anything else (here dr_put) must be rejected, not
  // dispatched.
  EXPECT_FALSE(wire::ring_op_endpoint_allowed(wire::Endpoint::kDrPut));
  EXPECT_FALSE(wire::ring_op_endpoint_allowed(wire::Endpoint::kRingStore));
  EXPECT_TRUE(wire::ring_op_endpoint_allowed(wire::Endpoint::kDcRegister));
  EXPECT_TRUE(wire::ring_op_endpoint_allowed(wire::Endpoint::kDcRemove));
  EXPECT_TRUE(wire::ring_op_endpoint_allowed(wire::Endpoint::kDcAddLocator));
  EXPECT_TRUE(wire::ring_op_endpoint_allowed(wire::Endpoint::kDdcPublish));

  rpc::Writer w;
  w.u16(static_cast<std::uint16_t>(wire::Endpoint::kDrPut));
  w.str("body");
  rpc::Reader r(w.buffer());
  EXPECT_THROW(wire::read_ring_op(r), rpc::CodecError);
}

TEST(Wire, RingFramesTruncationThrows) {
  namespace wire = rpc::wire;
  wire::RingJoinReply join;
  join.self = ring_node(42, "10.1.2.3:9400");
  join.has_pred = true;
  join.pred = ring_node(41, "10.1.2.2:9400");
  join.successors = {ring_node(43, "10.1.2.4:9400")};
  join.handoff = {{wire::Endpoint::kDdcPublish, "kv"}};
  rpc::Writer w;
  wire::write_ring_join_reply(w, join);
  const std::string full = w.buffer();
  // Every strict prefix must fail typed — never crash, never misdecode.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    // string_view-of-lvalue, NOT full.substr() — a temporary string would
    // dangle under the Reader (caught by ASan, now rejected at compile
    // time; see the deleted Reader(std::string&&) overloads).
    rpc::Reader r(std::string_view(full).substr(0, cut));
    EXPECT_THROW(wire::read_ring_join_reply(r), rpc::CodecError) << "prefix " << cut;
  }
}

// Regression for a stack-use-after-scope ASan caught in the test above:
// Reader(full.substr(0, cut)) compiled silently and read a dead temporary.
// The rvalue constructors are deleted so the dangling pattern no longer
// compiles — for any string temporary, named or via take().
static_assert(!std::is_constructible_v<rpc::Reader, std::string&&>,
              "Reader over a temporary string must not compile (dangling view)");
static_assert(!std::is_constructible_v<rpc::Reader, const std::string&&>,
              "Reader over a const temporary string must not compile (dangling view)");
static_assert(std::is_constructible_v<rpc::Reader, const std::string&>,
              "Reader over a named string stays allowed (converts via string_view)");

TEST(Wire, RingFuzzedGarbageEitherDecodesOrThrowsTyped) {
  util::Rng rng(0x516e6);
  for (int round = 0; round < 500; ++round) {
    std::string garbage;
    const std::uint64_t length = rng.below(160);
    for (std::uint64_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.below(256)));
    }
    const auto probe = [&](auto&& decode) {
      rpc::Reader r(garbage);
      try {
        decode(r);
      } catch (const rpc::CodecError&) {
        // typed failure is the expected outcome for most inputs
      }
    };
    probe([](rpc::Reader& r) { rpc::wire::read_ring_node(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_ring_lookup_reply(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_ring_op(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_ring_join_reply(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_ring_stabilize_reply(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_ring_store_request(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_ring_leave_request(r); });
    probe([](rpc::Reader& r) { rpc::wire::read_ring_status_info(r); });
  }
}

TEST(Wire, EveryEndpointHasAName) {
  // kMaxEndpoint derives from the kEndpointCount sentinel, and wire.cpp
  // static_asserts the name table covers the enum — this guards the other
  // half: nothing in range answers "unknown", everything past it does.
  for (std::uint16_t code = 0; code <= rpc::wire::kMaxEndpoint; ++code) {
    EXPECT_STRNE(rpc::wire::endpoint_name(static_cast<rpc::wire::Endpoint>(code)), "unknown")
        << "endpoint " << code;
  }
  EXPECT_STREQ(rpc::wire::endpoint_name(rpc::wire::Endpoint::kEndpointCount), "unknown");
}

TEST(Wire, RedirectErrorRoundTrip) {
  const api::Status redirect(
      api::Error{api::Errc::kRedirect, "ring", "10.9.8.7:9328"});
  rpc::Writer w;
  rpc::wire::write_status(w, redirect);
  rpc::Reader r(w.buffer());
  const api::Status decoded = rpc::wire::read_status(r);
  EXPECT_TRUE(r.exhausted());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, api::Errc::kRedirect);
  EXPECT_EQ(decoded.error().message, "10.9.8.7:9328");
}

TEST(Wire, MalformedBatchThrows) {
  rpc::Writer w;
  w.u32(1000);  // claims 1000 items, provides none
  rpc::Reader r(w.buffer());
  EXPECT_THROW(rpc::wire::read_register_batch(r), rpc::CodecError);

  rpc::Writer bad_code;
  bad_code.boolean(false);
  bad_code.u8(250);  // out-of-range Errc
  bad_code.str("dc");
  bad_code.str("msg");
  rpc::Reader r2(bad_code.buffer());
  EXPECT_THROW(rpc::wire::read_status(r2), rpc::CodecError);
}

TEST(Wire, JobMessagesRoundTrip) {
  jobs::JobSpec spec;
  spec.uid = util::Auid{1, 2};
  spec.name = "blast";
  spec.argv = {"/bin/sh", "-c", "grep -c ACGT -- \"$0\" > \"$1\"", "{input}", "{output}"};
  spec.env = {"LANG=C", "THREADS=2"};
  spec.timeout_s = 30.5;
  spec.inputs = {util::Auid{3, 4}, util::Auid{5, 6}};
  spec.collector = util::Auid{7, 8};

  jobs::TaskOrder order;
  order.task = util::Auid{9, 10};
  order.job = spec.uid;
  order.index = 1;
  order.argv = spec.argv;
  order.env = spec.env;
  order.timeout_s = spec.timeout_s;
  order.input = wire_data(11);
  order.result_name = "blast-result-1";

  jobs::TaskReport report;
  report.task = order.task;
  report.runner = "w3";
  report.ok = true;
  report.exit_code = 0;
  report.timed_out = false;
  report.data_local = true;
  report.result = wire_data(12);

  rpc::Writer w;
  rpc::wire::write_job_spec(w, spec);
  rpc::wire::write_task_order(w, order);
  rpc::wire::write_task_report(w, report);

  rpc::Reader r(w.buffer());
  EXPECT_EQ(rpc::wire::read_job_spec(r), spec);
  EXPECT_EQ(rpc::wire::read_task_order(r), order);
  EXPECT_EQ(rpc::wire::read_task_report(r), report);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, JobStatusInfoRoundTrip) {
  jobs::JobStatusInfo info;
  info.job = util::Auid{21, 22};
  info.name = "grep";
  info.total = 3;
  info.waiting = 1;
  info.running = 1;
  info.done = 1;
  info.failed = 0;
  info.data_local = 1;
  info.replaced = 2;
  jobs::TaskInfo done;
  done.index = 0;
  done.phase = jobs::TaskPhase::kDone;
  done.runner = "w1";
  done.attempts = 3;
  done.data_local = true;
  done.result = util::Auid{23, 24};
  jobs::TaskInfo running;
  running.index = 1;
  running.phase = jobs::TaskPhase::kRunning;
  running.runner = "w2";
  running.attempts = 1;
  jobs::TaskInfo waiting;
  waiting.index = 2;
  waiting.attempts = 1;
  info.tasks = {done, running, waiting};

  rpc::Writer w;
  rpc::wire::write_job_status_info(w, info);
  rpc::Reader r(w.buffer());
  const jobs::JobStatusInfo decoded = rpc::wire::read_job_status_info(r);
  EXPECT_EQ(decoded, info);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(decoded.done, 1);
  EXPECT_TRUE(decoded.tasks[0].data_local);

  // A task row with an out-of-range phase is a typed decode error, not UB.
  rpc::Writer bad;
  rpc::wire::write_auid(bad, info.job);
  bad.str("grep");
  for (int i = 0; i < 7; ++i) bad.i64(0);
  bad.u32(1);
  bad.i64(0);
  bad.u8(9);  // no such TaskPhase
  rpc::Reader r2(bad.buffer());
  EXPECT_THROW(rpc::wire::read_job_status_info(r2), rpc::CodecError);
}

}  // namespace
}  // namespace bitdew
