// DHT tests: routing correctness against a brute-force oracle, hop bounds,
// replication, crash resilience through stabilization, joins and the
// in-process LocalDht reference.
#include <gtest/gtest.h>

#include <cmath>

#include "dht/local_dht.hpp"
#include "dht/ring.hpp"

namespace bitdew {
namespace {

using dht::kNoNode;
using dht::LocalDht;
using dht::LookupResult;
using dht::NodeIndex;
using dht::Ring;
using dht::RingConfig;

struct RingRig {
  explicit RingRig(int nodes, RingConfig config = {}) : net(sim) {
    const auto zone = net.add_zone("lan");
    ring = std::make_unique<Ring>(sim, net, config);
    for (int i = 0; i < nodes; ++i) {
      net::HostSpec spec;
      spec.name = "host" + std::to_string(i);
      spec.uplink_Bps = 125e6;
      spec.downlink_Bps = 125e6;
      spec.lan_latency_s = 100e-6;
      hosts.push_back(net.add_host(zone, spec));
      indices.push_back(ring->add_node(hosts.back()));
    }
    ring->bootstrap_all();
  }

  sim::Simulator sim{42};
  net::Network net;
  std::unique_ptr<Ring> ring;
  std::vector<net::HostId> hosts;
  std::vector<NodeIndex> indices;
};

TEST(LocalDht, PutGetRemove) {
  LocalDht dht;
  dht.put("k", "v1");
  dht.put("k", "v2");
  dht.put("k", "v1");  // idempotent
  EXPECT_EQ(dht.get("k"), (std::vector<std::string>{"v1", "v2"}));
  EXPECT_TRUE(dht.remove("k", "v1"));
  EXPECT_FALSE(dht.remove("k", "v1"));
  EXPECT_EQ(dht.get("k"), (std::vector<std::string>{"v2"}));
  EXPECT_TRUE(dht.remove("k", "v2"));
  EXPECT_EQ(dht.key_count(), 0u);
  EXPECT_TRUE(dht.get("missing").empty());
}

TEST(Ring, LookupAgreesWithOracle) {
  RingRig rig(20);
  int checked = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string key = "data-" + std::to_string(i);
    const NodeIndex expected = rig.ring->oracle_owner(key);
    rig.ring->lookup(rig.indices[static_cast<std::size_t>(i) % 20], key,
                     [&checked, expected](LookupResult result) {
                       EXPECT_TRUE(result.ok);
                       EXPECT_EQ(result.owner, expected);
                       ++checked;
                     });
  }
  rig.sim.run();
  EXPECT_EQ(checked, 50);
}

TEST(Ring, LookupHopsAreLogarithmic) {
  RingConfig config;
  config.arity = 4;
  RingRig rig(64, config);
  int max_hops = 0;
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    rig.ring->lookup(rig.indices[static_cast<std::size_t>(i) % 64], "key-" + std::to_string(i),
                     [&](LookupResult result) {
                       ASSERT_TRUE(result.ok);
                       max_hops = std::max(max_hops, result.hops);
                       ++done;
                     });
  }
  rig.sim.run();
  EXPECT_EQ(done, 200);
  // k-ary fingers: expected O(log_k N) = log_4 64 = 3; allow slack for the
  // probabilistic node placement.
  EXPECT_LE(max_hops, 8);
  EXPECT_GT(rig.ring->stats().mean_hops(), 0.0);
}

TEST(Ring, PutThenGetReturnsAllValues) {
  RingRig rig(10);
  bool put1 = false;
  bool put2 = false;
  rig.ring->put(rig.indices[0], "shared", "host-a", [&](bool ok) { put1 = ok; });
  rig.ring->put(rig.indices[3], "shared", "host-b", [&](bool ok) { put2 = ok; });
  rig.sim.run();
  EXPECT_TRUE(put1);
  EXPECT_TRUE(put2);

  std::vector<std::string> values;
  rig.ring->get(rig.indices[7], "shared", [&](std::vector<std::string> v) { values = v; });
  rig.sim.run();
  EXPECT_EQ(values, (std::vector<std::string>{"host-a", "host-b"}));
}

TEST(Ring, GetOfUnknownKeyIsEmpty) {
  RingRig rig(5);
  bool called = false;
  rig.ring->get(rig.indices[1], "nope", [&](std::vector<std::string> v) {
    called = true;
    EXPECT_TRUE(v.empty());
  });
  rig.sim.run();
  EXPECT_TRUE(called);
}

TEST(Ring, ReplicationStoresFCopies) {
  RingConfig config;
  config.replication = 3;
  RingRig rig(10, config);
  rig.ring->put(rig.indices[0], "replicated", "v", [](bool) {});
  rig.sim.run();
  std::size_t total = 0;
  for (const NodeIndex node : rig.indices) total += rig.ring->stored_pairs(node);
  EXPECT_EQ(total, 3u);
}

TEST(Ring, RemoveDeletesReplicasToo) {
  RingRig rig(10);
  rig.ring->put(rig.indices[0], "temp", "v", [](bool) {});
  rig.sim.run();
  bool removed = false;
  rig.ring->remove(rig.indices[5], "temp", "v", [&](bool ok) { removed = ok; });
  rig.sim.run();
  EXPECT_TRUE(removed);
  std::size_t total = 0;
  for (const NodeIndex node : rig.indices) total += rig.ring->stored_pairs(node);
  EXPECT_EQ(total, 0u);
  std::vector<std::string> values{"sentinel"};
  rig.ring->get(rig.indices[2], "temp", [&](std::vector<std::string> v) { values = v; });
  rig.sim.run();
  EXPECT_TRUE(values.empty());
}

TEST(Ring, SurvivesOwnerCrashAfterStabilization) {
  RingConfig config;
  config.replication = 3;
  config.stabilize_period_s = 1.0;
  RingRig rig(12, config);
  rig.ring->start_maintenance();

  rig.ring->put(rig.indices[0], "precious", "payload", [](bool) {});
  rig.sim.run_until(rig.sim.now() + 5.0);

  const NodeIndex owner = rig.ring->oracle_owner("precious");
  ASSERT_NE(owner, kNoNode);
  rig.ring->fail(owner);

  // Let stabilization repair successor lists and predecessors.
  rig.sim.run_until(rig.sim.now() + 20.0);

  std::vector<std::string> values;
  int attempts = 0;
  std::function<void()> try_get = [&] {
    ++attempts;
    rig.ring->get(rig.indices[0] == owner ? rig.indices[1] : rig.indices[0], "precious",
                  [&](std::vector<std::string> v) {
                    if (v.empty() && attempts < 5) {
                      try_get();
                    } else {
                      values = v;
                    }
                  });
  };
  try_get();
  rig.sim.run_until(rig.sim.now() + 60.0);  // bounded: maintenance timers never drain
  EXPECT_EQ(values, (std::vector<std::string>{"payload"}));
}

TEST(Ring, JoinHandsOverKeysAndServesLookups) {
  RingConfig config;
  config.stabilize_period_s = 1.0;
  RingRig rig(8, config);
  rig.ring->start_maintenance();

  for (int i = 0; i < 30; ++i) {
    rig.ring->put(rig.indices[static_cast<std::size_t>(i) % 8], "key-" + std::to_string(i),
                  "v" + std::to_string(i), [](bool) {});
  }
  rig.sim.run_until(rig.sim.now() + 5.0);

  // A ninth node arrives.
  net::HostSpec spec;
  spec.name = "late-host";
  const auto host = rig.net.add_host(rig.net.host_zone(rig.hosts[0]), spec);
  const NodeIndex late = rig.ring->add_node(host);
  bool joined = false;
  rig.ring->join(late, rig.indices[0], [&](bool ok) { joined = ok; });
  rig.sim.run_until(rig.sim.now() + 30.0);
  EXPECT_TRUE(joined);

  // All keys remain resolvable and lookups agree with the oracle that now
  // includes the new node.
  int resolved = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string expected = "v" + std::to_string(i);
    rig.ring->get(rig.indices[2], key, [&resolved, expected](std::vector<std::string> v) {
      ASSERT_FALSE(v.empty());
      EXPECT_EQ(v.front(), expected);
      ++resolved;
    });
  }
  rig.sim.run_until(rig.sim.now() + 60.0);  // bounded: maintenance timers never drain
  EXPECT_EQ(resolved, 30);
}

TEST(Ring, SingleNodeRingOwnsEverything) {
  RingRig rig(1);
  bool ok = false;
  rig.ring->put(rig.indices[0], "k", "v", [&](bool r) { ok = r; });
  rig.sim.run();
  EXPECT_TRUE(ok);
  std::vector<std::string> values;
  rig.ring->get(rig.indices[0], "k", [&](std::vector<std::string> v) { values = v; });
  rig.sim.run();
  EXPECT_EQ(values, (std::vector<std::string>{"v"}));
}

TEST(Ring, StatsCountMessagesAndLookups) {
  RingRig rig(16);
  for (int i = 0; i < 10; ++i) {
    rig.ring->lookup(rig.indices[0], "k" + std::to_string(i), [](LookupResult) {});
  }
  rig.sim.run();
  EXPECT_EQ(rig.ring->stats().lookups, 10u);
  EXPECT_GT(rig.ring->stats().messages, 0u);
}

// Property: key distribution across nodes is reasonably balanced (no node
// owns more than ~6x the fair share with 64 nodes and 2k keys).
TEST(Ring, KeyDistributionIsBalanced) {
  RingRig rig(64);
  std::map<NodeIndex, int> owned;
  for (int i = 0; i < 2000; ++i) {
    const NodeIndex owner = rig.ring->oracle_owner("balance-key-" + std::to_string(i));
    ASSERT_NE(owner, kNoNode);
    ++owned[owner];
  }
  const double fair = 2000.0 / 64.0;
  for (const auto& [node, count] : owned) {
    EXPECT_LT(count, fair * 8) << "node " << node << " owns " << count;
  }
}

}  // namespace
}  // namespace bitdew
