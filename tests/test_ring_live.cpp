// Live DHT ring tests: N in-process bitdewd-style members (in-memory
// containers, loopback ephemeral ports, fast stabilization) forming a real
// ring over real sockets. The suite checks the distributed catalog against
// the same semantics a single LocalDht / central container provides —
// randomized put/get/remove equivalence through arbitrary members — and the
// churn story: a join moves key ownership, a crash (stop() without leave)
// loses no keys at f=2, a planned leave hands everything off, a durable
// member restarted from its WAL rejoins re-announcing its keys, and the
// client-side redirect chase is actually exercised.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/remote_service_bus.hpp"
#include "dht/live_ring.hpp"
#include "dht/local_dht.hpp"
#include "rpc/server.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace bitdew {
namespace {

using api::Errc;
using api::Status;

constexpr double kStabilize = 0.05;

rpc::ServiceHostConfig member_host_config() {
  rpc::ServiceHostConfig config;
  config.port = 0;
  config.loopback_only = true;
  config.idle_timeout_s = -1;
  config.failure_sweep_period_s = 0;  // the ring tick alone drives the sweeper
  return config;
}

rpc::RingOptions member_ring_options(const std::string& join_endpoint,
                                     std::uint64_t ring_id = 0) {
  rpc::RingOptions options;
  options.ring_id = ring_id;
  options.join_endpoint = join_endpoint;
  options.replication_f = 2;
  options.stabilize_period_s = kStabilize;
  options.call_timeout_s = 1.0;
  return options;
}

/// One in-process ring member: container + ddc + ServiceHost, in-memory
/// unless a WAL path is given.
struct Member {
  explicit Member(const std::string& wal_path = "") {
    if (wal_path.empty()) {
      container = std::make_unique<services::ServiceContainer>("member", clock);
    } else {
      container = std::make_unique<services::ServiceContainer>("member", clock, wal_path);
    }
    host = std::make_unique<rpc::ServiceHost>(*container, ddc, member_host_config());
  }

  Status start(const std::string& join_endpoint = "", std::uint64_t ring_id = 0) {
    const Status started = host->start();
    if (!started.ok()) return started;
    return host->start_ring(member_ring_options(join_endpoint, ring_id));
  }

  std::string endpoint() const { return "127.0.0.1:" + std::to_string(host->port()); }

  util::ManualClock clock;
  std::unique_ptr<services::ServiceContainer> container;
  dht::LocalDht ddc;
  std::unique_ptr<rpc::ServiceHost> host;
};

std::unique_ptr<api::RemoteServiceBus> connect(std::uint16_t port) {
  api::RemoteBusConfig config;
  config.connect_timeout_s = 1.0;
  config.call_deadline_s = 2.0;
  return std::make_unique<api::RemoteServiceBus>("127.0.0.1", port, config);
}

Status publish(api::RemoteServiceBus& bus, const std::string& key, const std::string& value) {
  std::optional<Status> out;
  bus.ddc_publish(key, value, [&](Status s) { out = std::move(s); });
  return *out;
}

api::Expected<std::vector<std::string>> lookup(api::RemoteServiceBus& bus,
                                               const std::string& key) {
  std::optional<api::Expected<std::vector<std::string>>> out;
  bus.ddc_search(key, [&](api::Expected<std::vector<std::string>> reply) {
    out = std::move(reply);
  });
  return *out;
}

Status dc_register(api::RemoteServiceBus& bus, const core::Data& data) {
  std::optional<Status> out;
  bus.dc_register(data, [&](Status s) { out = std::move(s); });
  return *out;
}

api::Expected<core::Data> dc_get(api::RemoteServiceBus& bus, const util::Auid& uid) {
  std::optional<api::Expected<core::Data>> out;
  bus.dc_get(uid, [&](api::Expected<core::Data> reply) { out = std::move(reply); });
  return *out;
}

Status dc_remove(api::RemoteServiceBus& bus, const util::Auid& uid) {
  std::optional<Status> out;
  bus.dc_remove(uid, [&](Status s) { out = std::move(s); });
  return *out;
}

core::Data make_data(std::uint64_t n) {
  core::Data data;
  data.uid = util::Auid{0x9000 + n, n * 7 + 1};
  data.name = "datum-" + std::to_string(n);
  data.size = static_cast<std::int64_t>(100 + n);
  return data;
}

/// Polls until `predicate` holds or the deadline passes.
bool eventually(double deadline_s, const std::function<bool()>& predicate) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(deadline_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

/// True when a walk from `port` sees exactly `n` members, all with live
/// predecessors — the ring has converged.
bool ring_converged(std::uint16_t port, std::size_t n) {
  auto bus = connect(port);
  const auto home = bus->ring_info();
  if (!home.ok()) return false;
  std::set<std::string> seen{home->self.endpoint};
  std::vector<rpc::wire::RingNode> frontier = home->successors;
  if (!home->has_pred) return n == 1 && frontier.empty();
  while (!frontier.empty() && seen.size() <= n + 1) {
    const rpc::wire::RingNode next = frontier.back();
    frontier.pop_back();
    if (!seen.insert(next.endpoint).second) continue;
    const std::size_t colon = next.endpoint.rfind(':');
    auto peer = connect(static_cast<std::uint16_t>(
        std::stoi(next.endpoint.substr(colon + 1))));
    const auto info = peer->ring_info();
    if (!info.ok() || !info->has_pred) return false;
    for (const rpc::wire::RingNode& s : info->successors) frontier.push_back(s);
  }
  return seen.size() == n;
}

TEST(RingLive, EquivalentToLocalCatalogAcrossMembers) {
  Member a, b, c;
  ASSERT_TRUE(a.start().ok());
  ASSERT_TRUE(b.start(a.endpoint()).ok());
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 2); }));
  ASSERT_TRUE(c.start(a.endpoint()).ok());
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 3); }));

  std::vector<std::unique_ptr<api::RemoteServiceBus>> buses;
  for (const Member* m : {&a, &b, &c}) buses.push_back(connect(m->host->port()));

  // Randomized ddc puts mirrored into a reference LocalDht; every member
  // must answer every key identically to the reference.
  util::Rng rng(0x41e);
  dht::LocalDht reference;
  const int kKeys = 12;
  for (int op = 0; op < 80; ++op) {
    const std::string key = "key" + std::to_string(rng.below(kKeys));
    const std::string value = "v" + std::to_string(rng.below(5));
    auto& bus = *buses[rng.below(buses.size())];
    ASSERT_TRUE(publish(bus, key, value).ok());
    reference.put(key, value);
  }
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "key" + std::to_string(k);
    const std::vector<std::string> want = reference.get(key);
    for (auto& bus : buses) {
      const auto got = lookup(*bus, key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.error().to_string();
      EXPECT_EQ(*got, want) << key;
    }
  }

  // dc registrations and removals behave like one central catalog no
  // matter which member each request lands on.
  std::map<std::uint64_t, core::Data> live;
  for (std::uint64_t n = 0; n < 24; ++n) {
    const core::Data data = make_data(n);
    ASSERT_TRUE(dc_register(*buses[rng.below(buses.size())], data).ok()) << n;
    live[n] = data;
  }
  // Duplicate registration is a duplicate everywhere, not a second copy.
  EXPECT_EQ(dc_register(*buses[0], make_data(3)).code(), Errc::kDuplicate);
  for (std::uint64_t n = 0; n < 24; n += 3) {
    ASSERT_TRUE(dc_remove(*buses[rng.below(buses.size())], live[n].uid).ok()) << n;
    live.erase(n);
  }
  for (std::uint64_t n = 0; n < 24; ++n) {
    for (auto& bus : buses) {
      const auto got = dc_get(*bus, make_data(n).uid);
      if (live.count(n) != 0) {
        ASSERT_TRUE(got.ok()) << n;
        EXPECT_EQ(got->name, live[n].name);
      } else {
        ASSERT_FALSE(got.ok()) << n;
        EXPECT_EQ(got.error().code, Errc::kNotFound) << n;
      }
    }
  }
}

TEST(RingLive, JoinTakesOverKeysAndServesThem) {
  Member a;
  ASSERT_TRUE(a.start().ok());
  auto bus_a = connect(a.host->port());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(publish(*bus_a, "jk" + std::to_string(i), "v").ok());
  }

  Member b, c;
  ASSERT_TRUE(b.start(a.endpoint()).ok());
  ASSERT_TRUE(c.start(a.endpoint()).ok());
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 3); }));

  // The joiners adopted key ranges (join handoff + repair), and every key
  // resolves through the members that did not receive the publishes.
  auto bus_b = connect(b.host->port());
  auto bus_c = connect(c.host->port());
  ASSERT_TRUE(eventually(5, [&] {
    const auto ib = bus_b->ring_info();
    const auto ic = bus_c->ring_info();
    return ib.ok() && ic.ok() && ib->ddc_keys + ic->ddc_keys > 0;
  }));
  for (int i = 0; i < 60; ++i) {
    const std::string key = "jk" + std::to_string(i);
    for (auto* bus : {bus_b.get(), bus_c.get()}) {
      const auto got = lookup(*bus, key);
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(got->size(), 1u) << key;
    }
  }
}

TEST(RingLive, CrashLosesNoKeysAtReplicationTwo) {
  Member a, b, c;
  ASSERT_TRUE(a.start().ok());
  ASSERT_TRUE(b.start(a.endpoint()).ok());
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 2); }));
  ASSERT_TRUE(c.start(a.endpoint()).ok());
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 3); }));

  auto bus_a = connect(a.host->port());
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(publish(*bus_a, "ck" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  // Let one repair round replicate everything before the crash.
  ASSERT_TRUE(eventually(5, [&] {
    std::uint64_t total = 0;
    for (const Member* m : {&a, &b, &c}) {
      auto bus = connect(m->host->port());
      const auto info = bus->ring_info();
      if (!info.ok()) return false;
      total += info->ddc_keys;
    }
    return total >= 2 * 80;
  }));

  b.host->stop();  // kill -9 equivalent: no leave, no handoff

  auto bus_c = connect(c.host->port());
  ASSERT_TRUE(eventually(10, [&] {
    for (int i = 0; i < 80; ++i) {
      const auto got = lookup(*bus_c, "ck" + std::to_string(i));
      if (!got.ok() || got->size() != 1) return false;
    }
    return true;
  }));
  // The survivors converge to a 2-member ring, and the original member
  // answers every key as well.
  EXPECT_TRUE(eventually(10, [&] { return ring_converged(a.host->port(), 2); }));
  for (int i = 0; i < 80; ++i) {
    const auto got = lookup(*bus_a, "ck" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ((*got)[0], "v" + std::to_string(i)) << i;
  }
}

TEST(RingLive, PlannedLeaveHandsKeysOff) {
  Member a, b;
  ASSERT_TRUE(a.start().ok());
  ASSERT_TRUE(b.start(a.endpoint()).ok());
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 2); }));

  auto bus_b = connect(b.host->port());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(publish(*bus_b, "lk" + std::to_string(i), "v").ok());
  }

  b.host->ring_leave();
  b.host->stop();

  // No stabilization grace needed: the handoff is synchronous with leave().
  auto bus_a = connect(a.host->port());
  for (int i = 0; i < 50; ++i) {
    const auto got = lookup(*bus_a, "lk" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got->size(), 1u) << i;
  }
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 1); }));
}

TEST(RingLive, ClientChasesRedirects) {
  Member a, b, c;
  ASSERT_TRUE(a.start().ok());
  ASSERT_TRUE(b.start(a.endpoint()).ok());
  ASSERT_TRUE(c.start(a.endpoint()).ok());
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 3); }));

  // Everything through ONE member: keys owned elsewhere come back as
  // redirects the bus must chase transparently.
  auto bus = connect(a.host->port());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(publish(*bus, "rk" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 40; ++i) {
    const auto got = lookup(*bus, "rk" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    ASSERT_EQ(got->size(), 1u) << i;
    EXPECT_EQ((*got)[0], "v" + std::to_string(i));
  }
  // With 3 members, ~2/3 of keyed calls land on a non-owner.
  EXPECT_GT(bus->redirects_followed(), 0u);
}

TEST(RingLive, DurableMemberRejoinsFromWal) {
  const auto dir = std::filesystem::temp_directory_path() / "bitdew_ring_wal_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string wal = (dir / "member.wal").string();
  constexpr std::uint64_t kStableId = 0x4242424242424242ULL;

  Member a;
  ASSERT_TRUE(a.start().ok());
  auto bus_a = connect(a.host->port());

  std::uint64_t held_before = 0;
  {
    Member b(wal);
    ASSERT_TRUE(b.start(a.endpoint(), kStableId).ok());
    ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 2); }));
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(publish(*bus_a, "wk" + std::to_string(i), "v").ok());
    }
    auto bus_b = connect(b.host->port());
    ASSERT_TRUE(eventually(5, [&] {
      const auto info = bus_b->ring_info();
      if (!info.ok()) return false;
      held_before = info->ddc_keys;
      return held_before > 0;
    }));
    b.host->stop();  // crash: no leave — only the WAL survives
  }

  ASSERT_TRUE(eventually(10, [&] { return ring_converged(a.host->port(), 1); }));

  // Same WAL, same ring id: the restarted member re-announces its keys
  // instead of coming back empty.
  Member b2(wal);
  ASSERT_TRUE(b2.start(a.endpoint(), kStableId).ok());
  ASSERT_TRUE(eventually(5, [&] { return ring_converged(a.host->port(), 2); }));
  auto bus_b2 = connect(b2.host->port());
  const auto info = bus_b2->ring_info();
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->ddc_keys, held_before);
  for (int i = 0; i < 60; ++i) {
    const auto got = lookup(*bus_b2, "wk" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got->size(), 1u) << i;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bitdew
