// Unit tests for the util substrate: MD5 (RFC 1321 vectors), AUIDs, byte
// parsing, strings, stats and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/auid.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strf.hpp"
#include "util/strings.hpp"

namespace bitdew {
namespace {

using util::Auid;
using util::Md5;

// --- MD5: the complete RFC 1321 appendix A.5 test suite -------------------

struct Md5Vector {
  const char* input;
  const char* digest;
};

class Md5Rfc1321 : public ::testing::TestWithParam<Md5Vector> {};

TEST_P(Md5Rfc1321, MatchesReferenceDigest) {
  EXPECT_EQ(Md5::of(GetParam().input).hex(), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5Rfc1321,
    ::testing::Values(
        Md5Vector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Md5Vector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Md5Vector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Md5Vector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Md5Vector{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
        Md5Vector{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                  "d174ab98d277d9f5a5611c2c9f419d9f"},
        Md5Vector{"1234567890123456789012345678901234567890123456789012345678901234"
                  "5678901234567890",
                  "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5, StreamingMatchesOneShot) {
  // Splitting the input at every possible position must not change the digest
  // (exercises the 64-byte block buffering edge cases).
  const std::string input =
      "The quick brown fox jumps over the lazy dog, repeatedly, until the "
      "message is comfortably longer than one 64-byte MD5 block.";
  const std::string expected = Md5::of(input).hex();
  for (std::size_t split = 0; split <= input.size(); ++split) {
    Md5 hasher;
    hasher.update(input.substr(0, split));
    hasher.update(input.substr(split));
    EXPECT_EQ(hasher.finish().hex(), expected) << "split at " << split;
  }
}

TEST(Md5, Prefix64IsBigEndianOfFirstEightBytes) {
  const auto digest = Md5::of("abc");
  // 900150983cd24fb0...
  EXPECT_EQ(digest.prefix64(), 0x900150983cd24fb0ULL);
}

TEST(Md5, ReusableAfterFinish) {
  Md5 hasher;
  hasher.update("abc");
  EXPECT_EQ(hasher.finish().hex(), "900150983cd24fb0d6963f7d28e17f72");
  hasher.update("a");
  EXPECT_EQ(hasher.finish().hex(), "0cc175b9c0f1b6a831c399e269772661");
}

// --- AUID ------------------------------------------------------------------

TEST(Auid, GeneratesUniqueIds) {
  util::reseed_auid(42);
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(util::next_auid().str()).second);
  }
}

TEST(Auid, RoundTripsThroughString) {
  util::reseed_auid(7);
  for (int i = 0; i < 100; ++i) {
    const Auid id = util::next_auid();
    EXPECT_EQ(Auid::parse(id.str()), id);
  }
}

TEST(Auid, ParseRejectsMalformedInput) {
  EXPECT_TRUE(Auid::parse("").is_nil());
  EXPECT_TRUE(Auid::parse("not-a-uid").is_nil());
  EXPECT_TRUE(Auid::parse("00000000-0000-0000-0000-00000000000g").is_nil());
  EXPECT_TRUE(Auid::parse("00000000:0000:0000:0000:000000000000").is_nil());
}

TEST(Auid, ThreadedGenerationStaysUnique) {
  util::reseed_auid(11);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Auid>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&results, t] {
      results[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        results[static_cast<std::size_t>(t)].push_back(util::next_auid());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<Auid> all;
  for (const auto& chunk : results) all.insert(chunk.begin(), chunk.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

// --- bytes -------------------------------------------------------------------

TEST(Bytes, HumanReadable) {
  EXPECT_EQ(util::human_bytes(17), "17 B");
  EXPECT_EQ(util::human_bytes(1500), "1.50 KB");
  EXPECT_EQ(util::human_bytes(500 * util::kMB), "500.00 MB");
  EXPECT_EQ(util::human_bytes(static_cast<std::int64_t>(2.68 * 1e9)), "2.68 GB");
}

struct ByteParseCase {
  const char* text;
  std::int64_t expected;
};

class BytesParse : public ::testing::TestWithParam<ByteParseCase> {};

TEST_P(BytesParse, Parses) { EXPECT_EQ(util::parse_bytes(GetParam().text), GetParam().expected); }

INSTANTIATE_TEST_SUITE_P(
    Units, BytesParse,
    ::testing::Values(ByteParseCase{"512", 512}, ByteParseCase{"10kb", 10000},
                      ByteParseCase{"10 KB", 10000}, ByteParseCase{"500MB", 500000000},
                      ByteParseCase{"2.68GB", 2680000000}, ByteParseCase{"0", 0},
                      ByteParseCase{"1.5m", 1500000}, ByteParseCase{"junk", -1},
                      ByteParseCase{"10xb", -1}, ByteParseCase{"-3", -1}));

// --- strings -----------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(util::trim("  abc \t\n"), "abc");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim(" \t "), "");
  EXPECT_EQ(util::trim("x"), "x");
}

TEST(Strings, Split) {
  EXPECT_EQ(util::split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(util::split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(util::split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, CaseHelpers) {
  EXPECT_TRUE(util::iequals("BitTorrent", "bittorrent"));
  EXPECT_FALSE(util::iequals("ftp", "ftps"));
  EXPECT_EQ(util::to_lower("FTP"), "ftp");
  EXPECT_TRUE(util::starts_with("attr update", "attr"));
  EXPECT_FALSE(util::starts_with("at", "attr"));
}

TEST(Strings, Join) {
  EXPECT_EQ(util::join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(util::join({}, ", "), "");
}

// --- strf ---------------------------------------------------------------------

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(util::strf("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(util::strf("empty"), "empty");
}

TEST(Strf, HandlesLongOutput) {
  const std::string big(5000, 'a');
  EXPECT_EQ(util::strf("%s!", big.c_str()).size(), big.size() + 1);
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, MeanMinMaxStddev) {
  util::RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(Stats, EmptyIsSafe) {
  const util::RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  EXPECT_DOUBLE_EQ(util::percentile(values, 50), 50.0);
  EXPECT_DOUBLE_EQ(util::percentile(values, 99), 99.0);
  EXPECT_DOUBLE_EQ(util::percentile(values, 100), 100.0);
  EXPECT_DOUBLE_EQ(util::percentile({}, 50), 0.0);
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DiffersAcrossSeeds) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds) {
  util::Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive) {
  util::Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanIsCentered) {
  util::Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanApproximatesParameter) {
  util::Rng rng(12);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kSamples, 3.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  util::Rng parent(99);
  util::Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

// --- clocks -----------------------------------------------------------------

TEST(Clock, ManualClockAdvances) {
  util::ManualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  clock.set(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(Clock, SystemClockIsMonotonic) {
  util::SystemClock clock;
  const double a = clock.now();
  const double b = clock.now();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace bitdew
