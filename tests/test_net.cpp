// Tests for the flow-level network: latency, bandwidth sharing under both
// models (exact max-min and counting approximation), failures and topology.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace bitdew {
namespace {

using net::FlowResult;
using net::HostSpec;
using net::Network;
using net::SharingModel;

struct Rig {
  sim::Simulator sim{1};
  Network net{sim};
};

HostSpec spec(const std::string& name, double up, double down, double latency = 1e-3) {
  HostSpec s;
  s.name = name;
  s.uplink_Bps = up;
  s.downlink_Bps = down;
  s.lan_latency_s = latency;
  return s;
}

TEST(Network, SingleFlowCompletionIsLatencyPlusServiceTime) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto a = rig.net.add_host(zone, spec("a", 100.0, 100.0, 0.5));
  const auto b = rig.net.add_host(zone, spec("b", 100.0, 50.0, 0.5));

  FlowResult result;
  rig.net.start_flow(a, b, 1000, [&](const FlowResult& r) { result = r; });
  rig.sim.run();
  // latency = 0.5 + 0.5 = 1s; bottleneck = dst downlink 50 B/s -> 20 s.
  EXPECT_TRUE(result.ok);
  EXPECT_NEAR(result.finished_at, 21.0, 1e-9);
  EXPECT_EQ(result.bytes, 1000);
}

TEST(Network, TwoFlowsShareTheServerUplink) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto server = rig.net.add_host(zone, spec("server", 100.0, 100.0, 0));
  const auto c1 = rig.net.add_host(zone, spec("c1", 1000.0, 1000.0, 0));
  const auto c2 = rig.net.add_host(zone, spec("c2", 1000.0, 1000.0, 0));

  std::vector<double> done;
  rig.net.start_flow(server, c1, 1000, [&](const FlowResult& r) { done.push_back(r.finished_at); });
  rig.net.start_flow(server, c2, 1000, [&](const FlowResult& r) { done.push_back(r.finished_at); });
  rig.sim.run();
  // Both flows get 50 B/s while sharing; both finish at ~20 s.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 20.0, 1e-6);
  EXPECT_NEAR(done[1], 20.0, 1e-6);
}

TEST(Network, FinishingFlowReleasesBandwidth) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto server = rig.net.add_host(zone, spec("server", 100.0, 100.0, 0));
  const auto c1 = rig.net.add_host(zone, spec("c1", 1000.0, 1000.0, 0));
  const auto c2 = rig.net.add_host(zone, spec("c2", 1000.0, 1000.0, 0));

  double short_done = 0;
  double long_done = 0;
  rig.net.start_flow(server, c1, 500, [&](const FlowResult& r) { short_done = r.finished_at; });
  rig.net.start_flow(server, c2, 1500, [&](const FlowResult& r) { long_done = r.finished_at; });
  rig.sim.run();
  // Shared at 50 B/s until t=10 (short done), then long runs at 100 B/s for
  // its remaining 1000 bytes -> t = 10 + 10 = 20.
  EXPECT_NEAR(short_done, 10.0, 1e-6);
  EXPECT_NEAR(long_done, 20.0, 1e-6);
}

TEST(Network, MaxMinGivesUnusedShareToUnconstrainedFlow) {
  Rig rig;
  rig.net.set_sharing_model(SharingModel::kMaxMin);
  const auto zone = rig.net.add_zone("lan");
  const auto server = rig.net.add_host(zone, spec("server", 100.0, 1000.0, 0));
  const auto slow = rig.net.add_host(zone, spec("slow", 1000.0, 10.0, 0));
  const auto fast = rig.net.add_host(zone, spec("fast", 1000.0, 1000.0, 0));

  double slow_done = 0;
  double fast_done = 0;
  rig.net.start_flow(server, slow, 100, [&](const FlowResult& r) { slow_done = r.finished_at; });
  rig.net.start_flow(server, fast, 900, [&](const FlowResult& r) { fast_done = r.finished_at; });
  rig.sim.run();
  // Max-min: slow flow pinned at 10 B/s by its downlink; fast flow gets the
  // remaining 90 B/s. slow: 100/10 = 10 s. fast: 900/90 = 10 s.
  EXPECT_NEAR(slow_done, 10.0, 1e-6);
  EXPECT_NEAR(fast_done, 10.0, 1e-6);
}

TEST(Network, CountingModelMatchesMaxMinOnSymmetricBottleneck) {
  for (const auto model : {SharingModel::kMaxMin, SharingModel::kCounting}) {
    Rig rig;
    rig.net.set_sharing_model(model);
    const auto zone = rig.net.add_zone("lan");
    const auto server = rig.net.add_host(zone, spec("server", 100.0, 100.0, 0));
    std::vector<net::HostId> clients;
    for (int i = 0; i < 4; ++i) {
      clients.push_back(rig.net.add_host(zone, spec("c", 1000.0, 1000.0, 0)));
    }
    std::vector<double> done;
    for (const auto c : clients) {
      rig.net.start_flow(server, c, 250, [&](const FlowResult& r) { done.push_back(r.finished_at); });
    }
    rig.sim.run();
    ASSERT_EQ(done.size(), 4u);
    for (const double t : done) EXPECT_NEAR(t, 10.0, 1e-6);
  }
}

TEST(Network, ZeroByteMessageArrivesAfterLatency) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto a = rig.net.add_host(zone, spec("a", 100.0, 100.0, 0.25));
  const auto b = rig.net.add_host(zone, spec("b", 100.0, 100.0, 0.25));
  double at = -1;
  rig.net.start_flow(a, b, 0, [&](const FlowResult& r) { at = r.finished_at; });
  rig.sim.run();
  EXPECT_NEAR(at, 0.5, 1e-9);
}

TEST(Network, InterZoneLatencyAndEgressApply) {
  Rig rig;
  const auto z1 = rig.net.add_zone("cluster1", 50.0, 50.0);
  const auto z2 = rig.net.add_zone("cluster2", 50.0, 50.0);
  rig.net.set_zone_latency(z1, z2, 0.1);
  const auto a = rig.net.add_host(z1, spec("a", 1000.0, 1000.0, 0));
  const auto b = rig.net.add_host(z2, spec("b", 1000.0, 1000.0, 0));

  EXPECT_NEAR(rig.net.one_way_latency(a, b), 0.1, 1e-12);

  double done = 0;
  rig.net.start_flow(a, b, 500, [&](const FlowResult& r) { done = r.finished_at; });
  rig.sim.run();
  // Bottleneck is the egress at 50 B/s -> 10 s + 0.1 s latency.
  EXPECT_NEAR(done, 10.1, 1e-6);
}

TEST(Network, DefaultWanLatencyUsedWithoutExplicitPair) {
  Rig rig;
  rig.net.set_default_wan_latency(0.42);
  const auto z1 = rig.net.add_zone("z1");
  const auto z2 = rig.net.add_zone("z2");
  const auto a = rig.net.add_host(z1, spec("a", 1.0, 1.0, 0));
  const auto b = rig.net.add_host(z2, spec("b", 1.0, 1.0, 0));
  EXPECT_NEAR(rig.net.one_way_latency(a, b), 0.42, 1e-12);
}

TEST(Network, KillHostFailsItsFlows) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto a = rig.net.add_host(zone, spec("a", 100.0, 100.0, 0));
  const auto b = rig.net.add_host(zone, spec("b", 100.0, 100.0, 0));

  FlowResult result;
  bool called = false;
  rig.net.start_flow(a, b, 10000, [&](const FlowResult& r) {
    result = r;
    called = true;
  });
  rig.sim.run_until(5.0);
  rig.net.kill_host(b);
  rig.sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(rig.net.alive(b));
}

TEST(Network, FlowToDeadHostFailsImmediately) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto a = rig.net.add_host(zone, spec("a", 100.0, 100.0, 0));
  const auto b = rig.net.add_host(zone, spec("b", 100.0, 100.0, 0));
  rig.net.kill_host(b);
  bool ok = true;
  rig.net.start_flow(a, b, 100, [&](const FlowResult& r) { ok = r.ok; });
  rig.sim.run();
  EXPECT_FALSE(ok);
}

TEST(Network, ReviveRestoresConnectivity) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto a = rig.net.add_host(zone, spec("a", 100.0, 100.0, 0));
  const auto b = rig.net.add_host(zone, spec("b", 100.0, 100.0, 0));
  rig.net.kill_host(b);
  rig.net.revive_host(b);
  bool ok = false;
  rig.net.start_flow(a, b, 100, [&](const FlowResult& r) { ok = r.ok; });
  rig.sim.run();
  EXPECT_TRUE(ok);
}

TEST(Network, CancelFlowReportsFailure) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto a = rig.net.add_host(zone, spec("a", 100.0, 100.0, 0));
  const auto b = rig.net.add_host(zone, spec("b", 100.0, 100.0, 0));
  bool ok = true;
  const auto flow = rig.net.start_flow(a, b, 1000000, [&](const FlowResult& r) { ok = r.ok; });
  rig.sim.run_until(1.0);
  rig.net.cancel_flow(flow);
  rig.sim.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(rig.net.active_flow_count(), 0u);
}

TEST(Network, DeliveredBytesAccumulate) {
  Rig rig;
  const auto zone = rig.net.add_zone("lan");
  const auto a = rig.net.add_host(zone, spec("a", 100.0, 100.0, 0));
  const auto b = rig.net.add_host(zone, spec("b", 100.0, 100.0, 0));
  rig.net.start_flow(a, b, 300, [](const FlowResult&) {});
  rig.net.start_flow(b, a, 200, [](const FlowResult&) {});
  rig.sim.run();
  EXPECT_EQ(rig.net.delivered_bytes(), 500);
}

// Conservation property: N clients pulling from one server cannot finish
// faster than total_bytes / server_uplink, and the fair completion is close
// to exactly that bound. Parameterized across client counts and models.
struct ShareCase {
  int clients;
  SharingModel model;
};

class ServerShareProperty : public ::testing::TestWithParam<ShareCase> {};

TEST_P(ServerShareProperty, ServerUplinkBoundsCompletion) {
  const auto [clients, model] = GetParam();
  Rig rig;
  rig.net.set_sharing_model(model);
  rig.net.set_rate_tolerance(0);  // exactness property: no completion drift
  const double uplink = 1000.0;
  const std::int64_t bytes = 5000;
  const auto zone = rig.net.add_zone("lan");
  const auto server = rig.net.add_host(zone, spec("server", uplink, uplink, 0));
  int finished = 0;
  double last = 0;
  for (int i = 0; i < clients; ++i) {
    const auto c = rig.net.add_host(zone, spec("c", 1e6, 1e6, 0));
    rig.net.start_flow(server, c, bytes, [&](const FlowResult& r) {
      EXPECT_TRUE(r.ok);
      ++finished;
      last = std::max(last, r.finished_at);
    });
  }
  rig.sim.run();
  EXPECT_EQ(finished, clients);
  const double lower_bound = static_cast<double>(bytes) * clients / uplink;
  EXPECT_GE(last, lower_bound - 1e-6);
  EXPECT_LE(last, lower_bound * 1.01 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Fanouts, ServerShareProperty,
    ::testing::Values(ShareCase{1, SharingModel::kMaxMin}, ShareCase{4, SharingModel::kMaxMin},
                      ShareCase{16, SharingModel::kMaxMin}, ShareCase{1, SharingModel::kCounting},
                      ShareCase{4, SharingModel::kCounting},
                      ShareCase{16, SharingModel::kCounting},
                      ShareCase{64, SharingModel::kCounting}));

TEST(Network, RateToleranceKeepsCompletionErrorBounded) {
  // With the 2% rate tolerance, staggered churn on a shared link must not
  // move completions more than a few percent from the exact solution.
  auto span = [](double tolerance) {
    Rig rig;
    rig.net.set_sharing_model(SharingModel::kCounting);
    rig.net.set_rate_tolerance(tolerance);
    const auto zone = rig.net.add_zone("lan");
    const auto server = rig.net.add_host(zone, spec("server", 1000.0, 1000.0, 0));
    double last = 0;
    for (int i = 0; i < 24; ++i) {
      const auto c = rig.net.add_host(zone, spec("c", 1e6, 1e6, 0));
      rig.sim.after(i * 0.1, [&rig, server, c, &last] {
        rig.net.start_flow(server, c, 2000,
                           [&last](const FlowResult& r) { last = std::max(last, r.finished_at); });
      });
    }
    rig.sim.run();
    return last;
  };
  const double exact = span(0.0);
  const double tolerant = span(0.02);
  EXPECT_NEAR(tolerant, exact, exact * 0.04);
}

}  // namespace
}  // namespace bitdew
