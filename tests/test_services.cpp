// Service-core tests: DC/DR/DT behaviour and every branch of the Data
// Scheduler's Algorithm 1 (keep/expire/affinity/replica/broadcast/
// MaxDataSchedule/failure detection/pinning/relative-lifetime chains).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <optional>

#include "core/attributes.hpp"
#include "services/container.hpp"
#include "util/clock.hpp"

namespace bitdew {
namespace {

using core::Data;
using core::DataAttributes;
using core::Lifetime;
using services::DataScheduler;
using services::SchedulerConfig;
using services::ScheduledData;
using services::SyncReply;

Data make_data(const std::string& name, std::int64_t size = 1000) {
  Data data;
  data.uid = util::next_auid();
  data.name = name;
  data.size = size;
  data.checksum = core::synthetic_content(data.uid.lo, size).checksum;
  return data;
}

std::vector<util::Auid> uids_of(const std::vector<ScheduledData>& items) {
  std::vector<util::Auid> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(item.data.uid);
  return out;
}

// --- Data Catalog ------------------------------------------------------------

class CatalogTest : public ::testing::Test {
 protected:
  db::Database database_;
  services::DataCatalog catalog_{database_};
};

TEST_F(CatalogTest, RegisterGetSearchRemove) {
  const Data data = make_data("genome");
  EXPECT_TRUE(catalog_.register_data(data));
  EXPECT_FALSE(catalog_.register_data(data));  // duplicate uid

  const auto got = catalog_.get(data.uid);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);

  EXPECT_EQ(catalog_.search("genome").size(), 1u);
  EXPECT_TRUE(catalog_.search("nope").empty());
  EXPECT_EQ(catalog_.search_one("genome")->uid, data.uid);

  EXPECT_TRUE(catalog_.remove(data.uid));
  EXPECT_FALSE(catalog_.remove(data.uid));
  EXPECT_FALSE(catalog_.get(data.uid).has_value());
}

TEST_F(CatalogTest, NamesAreNotUnique) {
  const Data a = make_data("shared");
  const Data b = make_data("shared");
  EXPECT_TRUE(catalog_.register_data(a));
  EXPECT_TRUE(catalog_.register_data(b));
  EXPECT_EQ(catalog_.search("shared").size(), 2u);
}

TEST_F(CatalogTest, LocatorsAttachAndCascadeDelete) {
  const Data data = make_data("with-locators");
  ASSERT_TRUE(catalog_.register_data(data));

  core::Locator locator;
  locator.data_uid = data.uid;
  locator.protocol = "ftp";
  locator.host = "server1";
  locator.path = "store/x";
  EXPECT_TRUE(catalog_.add_locator(locator));
  locator.host = "server2";
  EXPECT_TRUE(catalog_.add_locator(locator));
  EXPECT_EQ(catalog_.locators(data.uid).size(), 2u);

  // Locator for unknown data is rejected.
  core::Locator orphan = locator;
  orphan.data_uid = util::next_auid();
  EXPECT_FALSE(catalog_.add_locator(orphan));

  catalog_.remove(data.uid);
  EXPECT_TRUE(catalog_.locators(data.uid).empty());
}

// --- Data Repository -----------------------------------------------------------

TEST(Repository, PutGetRemove) {
  db::Database database;
  services::DataRepository repository(database, "server1");
  const Data data = make_data("blob", 4096);
  const auto content = core::synthetic_content(1, 4096);

  const core::Locator locator = repository.put(data, content, "ftp");
  EXPECT_EQ(locator.host, "server1");
  EXPECT_EQ(locator.protocol, "ftp");
  EXPECT_EQ(locator.data_uid, data.uid);

  ASSERT_TRUE(repository.exists(data.uid));
  EXPECT_EQ(repository.get(data.uid)->checksum, content.checksum);
  EXPECT_EQ(repository.stored_bytes(), 4096);
  EXPECT_EQ(repository.object_count(), 1u);

  // Re-put overwrites.
  const auto content2 = core::synthetic_content(2, 8192);
  repository.put(data, content2, "http");
  EXPECT_EQ(repository.stored_bytes(), 8192);
  EXPECT_EQ(repository.object_count(), 1u);

  EXPECT_TRUE(repository.remove(data.uid));
  EXPECT_FALSE(repository.remove(data.uid));
  EXPECT_FALSE(repository.get(data.uid).has_value());
}

// --- Data Transfer ---------------------------------------------------------------

class TransferServiceTest : public ::testing::Test {
 protected:
  db::Database database_;
  util::ManualClock clock_;
  services::DataTransfer dt_{database_, clock_};
};

TEST_F(TransferServiceTest, LifecycleCompletes) {
  const Data data = make_data("payload", 1000);
  const auto ticket = dt_.register_transfer(data, "server", "worker1", "ftp");
  EXPECT_EQ(dt_.active_count(), 1u);

  clock_.advance(0.5);
  dt_.monitor(ticket, 400);
  const auto snapshot = dt_.ticket(ticket);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->done_bytes, 400);
  EXPECT_DOUBLE_EQ(snapshot->last_monitored_at, 0.5);

  EXPECT_TRUE(dt_.complete(ticket, data.checksum, data.checksum));
  EXPECT_EQ(dt_.ticket(ticket)->state, services::TransferState::kDone);
  EXPECT_EQ(dt_.active_count(), 0u);
  EXPECT_EQ(dt_.stats().completed, 1u);
}

TEST_F(TransferServiceTest, ChecksumMismatchKeepsTicketActiveAndResets) {
  const Data data = make_data("payload", 1000);
  const auto ticket = dt_.register_transfer(data, "server", "worker1", "ftp");
  dt_.monitor(ticket, 1000);
  EXPECT_FALSE(dt_.complete(ticket, "badbadbad", data.checksum));
  const auto snapshot = dt_.ticket(ticket);
  EXPECT_EQ(snapshot->state, services::TransferState::kActive);
  EXPECT_EQ(snapshot->done_bytes, 0);  // distrusted payload discarded
  EXPECT_EQ(snapshot->attempts, 2);
  EXPECT_EQ(dt_.stats().checksum_rejects, 1u);
}

TEST_F(TransferServiceTest, FailureWithResumeKeepsOffset) {
  const Data data = make_data("payload", 1000);
  const auto ticket = dt_.register_transfer(data, "server", "worker1", "ftp");
  dt_.report_failure(ticket, 600, /*can_resume=*/true);
  EXPECT_EQ(dt_.ticket(ticket)->done_bytes, 600);
  EXPECT_EQ(dt_.ticket(ticket)->attempts, 2);
  EXPECT_EQ(dt_.stats().resumes, 1u);

  dt_.report_failure(ticket, 0, /*can_resume=*/false);
  EXPECT_EQ(dt_.ticket(ticket)->done_bytes, 0);  // restart from scratch

  dt_.give_up(ticket);
  EXPECT_EQ(dt_.ticket(ticket)->state, services::TransferState::kFailed);
  EXPECT_EQ(dt_.active_count(), 0u);
}

// --- Data Scheduler: Algorithm 1 ----------------------------------------------

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : ds_(clock_, SchedulerConfig{}) {}

  DataAttributes attr(int replica, bool ft = false) {
    DataAttributes attributes;
    attributes.replica = replica;
    attributes.fault_tolerant = ft;
    return attributes;
  }

  util::ManualClock clock_;
  DataScheduler ds_;
};

TEST_F(SchedulerTest, ReplicaRuleSchedulesUpToTarget) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(2));

  // First two hosts get it, third does not.
  EXPECT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  EXPECT_EQ(ds_.sync("h2", {}).download.size(), 1u);
  EXPECT_TRUE(ds_.sync("h3", {}).download.empty());
  // Ownership is confirmed once the hosts report the datum cached.
  ds_.sync("h1", {data.uid});
  ds_.sync("h2", {data.uid});
  EXPECT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h1", "h2"}));
}

TEST_F(SchedulerTest, UnconfirmedAssignmentExpiresAndIsRescheduled) {
  // A host that accepts an assignment but never confirms (failed download)
  // must not absorb the replica forever: after the 3x-heartbeat TTL the
  // datum is offered to someone else.
  const Data data = make_data("slippery");
  ds_.schedule(data, attr(1));
  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  // Within the TTL the assignment holds: nobody else gets it.
  clock_.set(1.0);
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());
  // h1 keeps syncing but never reports the datum (nor in-flight).
  clock_.set(2.0);
  ds_.sync("h1", {});
  clock_.set(4.0);  // past the 3 s TTL
  EXPECT_EQ(ds_.sync("h2", {}).download.size(), 1u);
}

TEST_F(SchedulerTest, InFlightReportKeepsAssignmentAlive) {
  const Data data = make_data("long-download");
  ds_.schedule(data, attr(1));
  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  // h1 reports the download in flight well past the original TTL.
  for (int t = 1; t <= 10; ++t) {
    clock_.set(t);
    ds_.sync("h1", {}, {data.uid});
    EXPECT_TRUE(ds_.sync("h2", {}).download.empty()) << "t=" << t;
  }
}

TEST_F(SchedulerTest, BroadcastReplicaGoesEverywhere) {
  const Data data = make_data("everywhere");
  ds_.schedule(data, attr(core::kReplicaAll));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ds_.sync("host" + std::to_string(i), {}).download.size(), 1u);
  }
}

TEST_F(SchedulerTest, CachedDataIsKeptAndOwnersUpdated) {
  const Data data = make_data("kept");
  ds_.schedule(data, attr(1));
  const SyncReply first = ds_.sync("h1", {});
  ASSERT_EQ(first.download.size(), 1u);

  const SyncReply second = ds_.sync("h1", {data.uid});
  EXPECT_EQ(second.keep, std::vector<util::Auid>{data.uid});
  EXPECT_TRUE(second.download.empty());
  EXPECT_TRUE(second.drop.empty());
  EXPECT_TRUE(ds_.owners(data.uid).contains("h1"));
}

TEST_F(SchedulerTest, UnknownCachedDataIsDropped) {
  const Data stranger = make_data("not-scheduled");
  const SyncReply reply = ds_.sync("h1", {stranger.uid});
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{stranger.uid});
}

TEST_F(SchedulerTest, AbsoluteLifetimeExpires) {
  const Data data = make_data("mortal");
  DataAttributes attributes = attr(1);
  attributes.lifetime = Lifetime::absolute(10.0);
  ds_.schedule(data, attributes);

  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  clock_.set(11.0);
  const SyncReply reply = ds_.sync("h1", {data.uid});
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{data.uid});
  EXPECT_EQ(ds_.scheduled_count(), 0u);  // reaped from Θ
}

TEST_F(SchedulerTest, RelativeLifetimeCascades) {
  // The Collector pattern: Genebase and Result die with the Collector.
  const Data collector = make_data("collector");
  const Data genebase = make_data("genebase");
  const Data result = make_data("result");
  ds_.schedule(collector, attr(1));

  DataAttributes genebase_attr = attr(1);
  genebase_attr.lifetime = Lifetime::relative(collector.uid);
  ds_.schedule(genebase, genebase_attr);

  DataAttributes result_attr = attr(1);
  result_attr.lifetime = Lifetime::relative(genebase.uid);  // chain of two
  ds_.schedule(result, result_attr);

  EXPECT_EQ(ds_.sync("h1", {}).download.size(), 3u);
  ds_.unschedule(collector.uid);
  // Both dependents expire transitively.
  EXPECT_EQ(ds_.scheduled_count(), 0u);
  const SyncReply reply = ds_.sync("h1", {collector.uid, genebase.uid, result.uid});
  EXPECT_EQ(reply.drop.size(), 3u);
}

TEST_F(SchedulerTest, AffinityFollowsReference) {
  const Data sequence = make_data("sequence");
  const Data genebase = make_data("genebase");
  ds_.schedule(sequence, attr(1));

  DataAttributes follows = attr(0);
  follows.affinity = sequence.uid;
  ds_.schedule(genebase, follows);

  // h1 receives the sequence on its first sync; genebase only follows once
  // the sequence is actually cached.
  const SyncReply first = ds_.sync("h1", {});
  EXPECT_EQ(uids_of(first.download), std::vector<util::Auid>{sequence.uid});

  const SyncReply second = ds_.sync("h1", {sequence.uid});
  EXPECT_EQ(uids_of(second.download), std::vector<util::Auid>{genebase.uid});

  // A host without the sequence never receives the genebase.
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty() ||
              uids_of(ds_.sync("h2", {}).download) == std::vector<util::Auid>{});
}

TEST_F(SchedulerTest, AffinityIsStrongerThanReplica) {
  // Paper: if A is on rn nodes and B has affinity on A, B lands on all rn
  // nodes regardless of B.replica.
  const Data a = make_data("A");
  ds_.schedule(a, attr(3));
  DataAttributes b_attr = attr(0);
  const Data b = make_data("B");
  b_attr.affinity = a.uid;
  ds_.schedule(b, b_attr);

  for (const std::string host : {"h1", "h2", "h3"}) {
    ASSERT_EQ(ds_.sync(host, {}).download.size(), 1u);
    const SyncReply follow = ds_.sync(host, {a.uid});
    EXPECT_EQ(uids_of(follow.download), std::vector<util::Auid>{b.uid}) << host;
    ds_.sync(host, {a.uid, b.uid});  // confirm ownership
  }
  EXPECT_EQ(ds_.owners(b.uid).size(), 3u);
}

TEST_F(SchedulerTest, MaxDataScheduleCapsDownloads) {
  SchedulerConfig config;
  config.max_data_schedule = 3;
  DataScheduler capped(clock_, config);
  for (int i = 0; i < 10; ++i) capped.schedule(make_data("d" + std::to_string(i)), attr(1));
  EXPECT_EQ(capped.sync("h1", {}).download.size(), 3u);
  EXPECT_EQ(capped.sync("h1", {}).download.size(), 3u);  // next batch follows
}

TEST_F(SchedulerTest, FaultTolerantDataIsRescheduledAfterTimeout) {
  const Data data = make_data("precious");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  ds_.sync("h1", {data.uid});
  EXPECT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h1"}));

  // h1 goes silent; h2 keeps syncing.
  clock_.set(10.0);  // > 3x heartbeat of 1s
  const auto dead = ds_.detect_failures();
  EXPECT_EQ(dead, std::vector<std::string>{"h1"});
  EXPECT_FALSE(ds_.host_alive("h1"));

  const SyncReply reply = ds_.sync("h2", {});
  EXPECT_EQ(uids_of(reply.download), std::vector<util::Auid>{data.uid});
}

TEST_F(SchedulerTest, NonFaultTolerantDataIsNotRescheduled) {
  const Data data = make_data("fragile");
  ds_.schedule(data, attr(1, /*ft=*/false));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});

  clock_.set(10.0);
  ds_.detect_failures();
  // Owner list unchanged -> nothing to reschedule.
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());
  EXPECT_TRUE(ds_.owners(data.uid).contains("h1"));
}

TEST_F(SchedulerTest, FailureDetectionUsesThreeHeartbeats) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1, true));
  ds_.sync("h1", {data.uid});
  clock_.set(2.9);  // below 3x1s timeout
  EXPECT_TRUE(ds_.detect_failures().empty());
  clock_.set(3.1);
  EXPECT_EQ(ds_.detect_failures().size(), 1u);
}

TEST_F(SchedulerTest, PinnedDataSurvivesFailureDetection) {
  const Data data = make_data("pinned");
  ds_.schedule(data, attr(1, true));
  ds_.pin(data.uid, "master");
  EXPECT_TRUE(ds_.owners(data.uid).contains("master"));

  clock_.set(100.0);
  ds_.sync("worker", {});  // triggers reap/failure bookkeeping paths
  ds_.detect_failures();
  EXPECT_TRUE(ds_.owners(data.uid).contains("master"));
}

TEST_F(SchedulerTest, RecoveredHostCountsAgain) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1, true));
  ds_.sync("h1", {data.uid});
  clock_.set(10.0);
  ds_.detect_failures();
  EXPECT_FALSE(ds_.host_alive("h1"));
  // Host resumes syncing: alive again, replica satisfied by its cache.
  const SyncReply reply = ds_.sync("h1", {data.uid});
  EXPECT_EQ(reply.keep.size(), 1u);
  EXPECT_TRUE(ds_.host_alive("h1"));
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());
}

TEST_F(SchedulerTest, RejoinAfterReplacementDoesNotResurrectAssignments) {
  // A host that times out, is declared dead, and later syncs again (e.g. a
  // restarted worker with an empty cache) must be readmitted — but the
  // assignment it lost, already re-placed on a survivor, must NOT be
  // resurrected: neither its stale in_flight claim nor its reappearance may
  // pull the replica back or double-assign it.
  const Data data = make_data("precious");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);  // assigned to h1
  ds_.sync("h1", {data.uid});                         // h1 confirms ownership
  ASSERT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h1"}));

  // h1 goes silent past the 3x-heartbeat timeout and is declared dead.
  clock_.set(10.0);
  ds_.sync("h2", {});  // h2 is alive and empty
  ASSERT_EQ(ds_.detect_failures(), std::vector<std::string>{"h1"});

  // The replica is re-placed on h2 and confirmed there.
  ASSERT_EQ(ds_.sync("h2", {}).download.size(), 1u);
  ds_.sync("h2", {data.uid});
  ASSERT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h2"}));

  // h1 rejoins, restarted with an empty cache but a stale in_flight claim.
  const SyncReply rejoin = ds_.sync("h1", {}, {data.uid});
  EXPECT_TRUE(ds_.host_alive("h1"));        // readmitted
  EXPECT_TRUE(rejoin.download.empty());     // replica satisfied by h2
  EXPECT_TRUE(rejoin.drop.empty());
  // The stale claim must not have re-entered the credible-owner count, nor
  // displaced h2.
  EXPECT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h2"}));

  // And future placement decisions see exactly one credible owner: a third
  // host is not assigned the datum either.
  EXPECT_TRUE(ds_.sync("h3", {}).download.empty());
}

TEST_F(SchedulerTest, RejoinWithSurvivingCacheIsReconfirmedNotReassigned) {
  // Variant: the partitioned host kept its replica on disk. On rejoin the
  // cache report re-confirms ownership (the host demonstrably holds the
  // bytes) without issuing any new download order.
  const Data data = make_data("kept");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});

  clock_.set(10.0);
  ds_.detect_failures();
  ASSERT_FALSE(ds_.host_alive("h1"));

  const SyncReply rejoin = ds_.sync("h1", {data.uid});
  EXPECT_TRUE(ds_.host_alive("h1"));
  EXPECT_EQ(rejoin.keep, std::vector<util::Auid>{data.uid});
  EXPECT_TRUE(rejoin.download.empty());
  EXPECT_TRUE(ds_.owners(data.uid).contains("h1"));
}

TEST_F(SchedulerTest, EmptyCacheReportRevokesOwnershipAndResends) {
  // A worker that restarts with a lost/corrupt replica reports Δk without
  // the datum. Its sync report is authoritative: ownership is revoked and
  // the replica rule re-sends the data — in the same sync.
  const Data data = make_data("lost");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});
  ASSERT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h1"}));

  const SyncReply resent = ds_.sync("h1", {});
  EXPECT_EQ(uids_of(resent.download), std::vector<util::Auid>{data.uid});
  EXPECT_FALSE(ds_.owners(data.uid).contains("h1"));

  // An in-flight claim is not an ownership claim, but it does keep the
  // provisional assignment alive instead of re-revoking it.
  const SyncReply downloading = ds_.sync("h1", {}, {data.uid});
  EXPECT_TRUE(downloading.download.empty());

  // Pinned owners are permanent: an empty report never unpins the master.
  const Data pinned = make_data("pinned");
  ds_.schedule(pinned, attr(1, /*ft=*/true));
  ds_.pin(pinned.uid, "master");
  ds_.sync("master", {});
  EXPECT_TRUE(ds_.owners(pinned.uid).contains("master"));
}

TEST_F(SchedulerTest, HostTableReportsLivenessAndCacheSizes) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});
  clock_.set(2.0);
  ds_.sync("h2", {});
  clock_.set(4.0);  // h1 last synced at 0 -> dead; h2 at 2.0 -> alive
  ds_.detect_failures();

  const std::vector<services::HostInfo> table = ds_.host_table();
  ASSERT_EQ(table.size(), 2u);  // sorted by name
  EXPECT_EQ(table[0].name, "h1");
  EXPECT_FALSE(table[0].alive);
  EXPECT_DOUBLE_EQ(table[0].last_sync_age_s, 4.0);
  EXPECT_EQ(table[0].cached, 1u);
  EXPECT_EQ(table[1].name, "h2");
  EXPECT_TRUE(table[1].alive);
  EXPECT_DOUBLE_EQ(table[1].last_sync_age_s, 2.0);
  EXPECT_EQ(table[1].cached, 0u);
}

TEST_F(SchedulerTest, UnscheduleStopsFutureAssignment) {
  const Data data = make_data("gone");
  ds_.schedule(data, attr(5));
  ds_.sync("h1", {});
  EXPECT_TRUE(ds_.unschedule(data.uid));
  EXPECT_FALSE(ds_.unschedule(data.uid));
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());
  const SyncReply reply = ds_.sync("h1", {data.uid});
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{data.uid});
}

TEST_F(SchedulerTest, ReplicaIncreaseTriggersNewAssignments) {
  // The paper's dynamic strategy: bump replication when hosts outnumber
  // remaining tasks.
  const Data data = make_data("task");
  ds_.schedule(data, attr(1));
  ds_.sync("h1", {});
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());

  auto updated = attr(2);
  ds_.schedule(data, updated);
  EXPECT_EQ(ds_.sync("h2", {}).download.size(), 1u);
}

TEST_F(SchedulerTest, StatsAccumulate) {
  const Data data = make_data("counted");
  ds_.schedule(data, attr(1));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});
  EXPECT_EQ(ds_.stats().syncs, 2u);
  EXPECT_EQ(ds_.stats().orders, 1u);
}

// --- peer data plane: locators in the sync reply -------------------------------

TEST_F(SchedulerTest, DownloadOrdersCarryPeerLocatorsOfLiveHolders) {
  const Data data = make_data("swarmed");
  auto attributes = attr(2);
  attributes.protocol = "p2p";
  ASSERT_TRUE(ds_.schedule(data, attributes));

  // h1 is the seed: no owners yet, so no sources ride with its order.
  const SyncReply seed = ds_.sync("h1", {}, {}, "10.0.0.1:7001");
  ASSERT_EQ(seed.download.size(), 1u);
  ASSERT_EQ(seed.sources.size(), 1u);
  EXPECT_TRUE(seed.sources[0].empty());
  ds_.sync("h1", {data.uid}, {}, "10.0.0.1:7001");  // verified: h1 ∈ Ω

  // h2's order now names h1's chunk server.
  const SyncReply second = ds_.sync("h2", {}, {}, "10.0.0.2:7002");
  ASSERT_EQ(second.download.size(), 1u);
  ASSERT_EQ(second.sources.size(), 1u);
  ASSERT_EQ(second.sources[0].size(), 1u);
  EXPECT_EQ(second.sources[0][0].protocol, services::kPeerLocatorProtocol);
  EXPECT_EQ(second.sources[0][0].host, "10.0.0.1:7001");
  EXPECT_EQ(second.sources[0][0].path, "h1");
  EXPECT_EQ(second.sources[0][0].data_uid, data.uid);

  // The endpoint is visible in the host table too.
  const auto table = ds_.host_table();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].endpoint, "10.0.0.1:7001");
}

TEST_F(SchedulerTest, DeadAndEndpointlessHoldersAreFilteredFromSources) {
  const Data data = make_data("careful");
  auto attributes = attr(4);  // one more copy than the three holders below
  attributes.protocol = "p2p";
  attributes.fault_tolerant = false;  // dead owners stay in Ω — the filter
                                      // below must still exclude them
  ASSERT_TRUE(ds_.schedule(data, attributes));
  // Gate admits one download per generation: h1 seeds, then h2 and h3.
  ds_.sync("h1", {}, {}, "10.0.0.1:7001");
  ds_.sync("h1", {data.uid}, {}, "10.0.0.1:7001");
  ds_.sync("h2", {}, {}, "");  // h2 does not serve peers
  ds_.sync("h2", {data.uid}, {}, "");
  ds_.sync("h3", {}, {}, "10.0.0.3:7003");
  ds_.sync("h3", {data.uid}, {}, "10.0.0.3:7003");

  // h1 crashes: after the 3x-heartbeat timeout it is declared dead and its
  // locator must vanish from new orders even though it still owns a replica.
  clock_.set(10.0);
  ds_.sync("h2", {data.uid}, {}, "");
  ds_.sync("h3", {data.uid}, {}, "10.0.0.3:7003");
  ASSERT_FALSE(ds_.detect_failures().empty());
  ASSERT_TRUE(ds_.owners(data.uid).contains("h1"));  // not ft: Ω keeps h1

  const SyncReply order = ds_.sync("h4", {}, {}, "10.0.0.4:7004");
  ASSERT_EQ(order.download.size(), 1u);
  ASSERT_EQ(order.sources.size(), 1u);
  ASSERT_EQ(order.sources[0].size(), 1u);  // h1 dead, h2 endpoint-less
  EXPECT_EQ(order.sources[0][0].path, "h3");
}

TEST_F(SchedulerTest, SwarmGateDoublesP2pFanOutPerGeneration) {
  // Collective distribution: a replica=-1 p2p datum must not stampede the
  // repository — one seed first, then swarm_factor * |owners| in flight.
  const Data data = make_data("broadcast");
  DataAttributes attributes;
  attributes.replica = core::kReplicaAll;
  attributes.protocol = "p2p";
  ASSERT_TRUE(ds_.schedule(data, attributes));

  int ordered = 0;
  for (int h = 0; h < 6; ++h) {
    const std::string host = "h" + std::to_string(h);
    ordered += static_cast<int>(ds_.sync(host, {}, {}, host + ":7000").download.size());
  }
  EXPECT_EQ(ordered, 1);  // generation 0: the seed only

  ds_.sync("h0", {data.uid}, {}, "h0:7000");  // the seed verified
  ordered = 0;
  for (int h = 1; h < 6; ++h) {
    const std::string host = "h" + std::to_string(h);
    ordered += static_cast<int>(ds_.sync(host, {}, {}, host + ":7000").download.size());
  }
  EXPECT_EQ(ordered, 2);  // generation 1: 2 * |Ω| = 2

  // An oob=tcp broadcast is NOT gated: everyone downloads at once.
  const Data flat = make_data("flat");
  DataAttributes tcp_attributes;
  tcp_attributes.replica = core::kReplicaAll;
  tcp_attributes.protocol = "tcp";
  ASSERT_TRUE(ds_.schedule(flat, tcp_attributes));
  ordered = 0;
  for (int h = 0; h < 6; ++h) {
    const std::string host = "h" + std::to_string(h);
    for (const auto& item : ds_.sync(host, {}, {}, host + ":7000").download) {
      if (item.data.uid == flat.uid) ++ordered;
    }
  }
  EXPECT_EQ(ordered, 6);
}

// --- satellite bugfixes: abstime anchoring + protocol admission ---------------

TEST_F(SchedulerTest, DurationLifetimeIsAnchoredAtReceiptTime) {
  clock_.set(100.0);
  const Data data = make_data("ephemeral");
  auto attributes = attr(1);
  attributes.lifetime = Lifetime::duration(50.0);  // the DSL's abstime=50
  ASSERT_TRUE(ds_.schedule(data, attributes));

  // The stored entry is absolute on the scheduler's OWN clock.
  const auto stored = ds_.scheduled(data.uid);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->attributes.lifetime.kind, Lifetime::Kind::kAbsolute);
  EXPECT_DOUBLE_EQ(stored->attributes.lifetime.expires_at, 150.0);

  clock_.set(149.0);
  EXPECT_EQ(ds_.sync("h1", {}).download.size(), 1u);  // still alive
  clock_.set(151.0);
  const SyncReply reply = ds_.sync("h1", {data.uid});
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{data.uid});  // reaped on time
  EXPECT_EQ(ds_.scheduled_count(), 0u);
}

TEST_F(SchedulerTest, UnknownOobProtocolIsRejectedAtScheduleTime) {
  const Data data = make_data("exotic");
  auto attributes = attr(1);
  attributes.protocol = "gridftp";  // nothing registered under this name
  EXPECT_FALSE(ds_.schedule(data, attributes));
  EXPECT_EQ(ds_.scheduled_count(), 0u);

  // An empty known_protocols set opts out (simulation experiments register
  // arbitrary protocols).
  SchedulerConfig permissive;
  permissive.known_protocols.clear();
  DataScheduler open_ds(clock_, permissive);
  EXPECT_TRUE(open_ds.schedule(data, attributes));
}

// --- Data Scheduler: pin-push + compute-to-data placement ---------------------

/// A pin is a placement rule of its own: a replica=0 datum (no replica rule,
/// no affinity) still reaches exactly its pinned host — this is how a job's
/// collector token lands on the collector node.
TEST_F(SchedulerTest, PinPushesReplicaZeroDatumToPinnedHostOnly) {
  const Data token = make_data("collector-token", 0);
  ASSERT_TRUE(ds_.schedule(token, attr(0)));
  ASSERT_TRUE(ds_.pin(token.uid, "coll"));

  EXPECT_TRUE(ds_.sync("other", {}).download.empty());
  const SyncReply reply = ds_.sync("coll", {});
  ASSERT_EQ(reply.download.size(), 1u);
  EXPECT_EQ(reply.download[0].data.uid, token.uid);

  // Confirmed, it is kept — pinned data is never dropped from its host.
  const SyncReply again = ds_.sync("coll", {token.uid});
  EXPECT_EQ(again.keep, std::vector<util::Auid>{token.uid});
  EXPECT_TRUE(again.drop.empty());
  EXPECT_TRUE(ds_.sync("other", {}).download.empty());
}

/// The job subsystem's result flow as pure Algorithm 1: a result scheduled
/// {replica=0, affinity=collector} reaches the collector's host and nobody
/// else — the affinity chain Result → Collector.
TEST_F(SchedulerTest, AffinityChainRoutesResultToCollectorHolder) {
  const Data token = make_data("collector-token", 0);
  ASSERT_TRUE(ds_.schedule(token, attr(0)));
  ASSERT_TRUE(ds_.pin(token.uid, "coll"));
  ds_.sync("coll", {});
  ds_.sync("coll", {token.uid});  // the collector holds its token

  const Data result = make_data("result");
  DataAttributes follows = attr(0);
  follows.affinity = token.uid;
  ASSERT_TRUE(ds_.schedule(result, follows));

  EXPECT_TRUE(ds_.sync("w1", {}).download.empty());  // no token → no result
  const SyncReply reply = ds_.sync("coll", {token.uid});
  EXPECT_EQ(uids_of(reply.download), std::vector<util::Auid>{result.uid});
}

/// An affinity-placed task goes to a host whose CONFIRMED Δk holds the
/// input, never to an empty host — replica-affinity task placement prefers
/// the replica holder.
TEST_F(SchedulerTest, AffinityPrefersConfirmedHolderOverEmptyHost) {
  const Data input = make_data("input");
  ASSERT_TRUE(ds_.schedule(input, attr(1, /*ft=*/true)));
  ds_.sync("w1", {});          // w1 is assigned the input...
  ds_.sync("w1", {input.uid});  // ...and confirms it
  ds_.sync("w2", {});          // w2 is alive and empty

  const Data task = make_data("task", 0);
  DataAttributes placement = attr(0);
  placement.affinity = input.uid;
  ASSERT_TRUE(ds_.schedule(task, placement));

  EXPECT_TRUE(ds_.sync("w2", {}).download.empty());
  const SyncReply reply = ds_.sync("w1", {input.uid});
  EXPECT_EQ(uids_of(reply.download), std::vector<util::Auid>{task.uid});
  EXPECT_TRUE(ds_.sync("w2", {}).download.empty());
}

/// Affinity to a datum with ZERO live holders places the task nowhere until
/// the replica rule re-homes the input and the new holder confirms it —
/// then the task follows. (The JobService's fallback timer covers the case
/// where that never happens.)
TEST_F(SchedulerTest, AffinityToDatumWithNoLiveHolderWaitsForRehoming) {
  const Data input = make_data("input");
  ASSERT_TRUE(ds_.schedule(input, attr(1, /*ft=*/true)));
  ds_.sync("w1", {});
  ds_.sync("w1", {input.uid});

  const Data task = make_data("task", 0);
  DataAttributes placement = attr(0);
  placement.affinity = input.uid;
  ASSERT_TRUE(ds_.schedule(task, placement));

  // The only holder dies before claiming the task.
  clock_.advance(10.0);
  ds_.detect_failures();
  EXPECT_TRUE(ds_.owners(input.uid).empty());

  // A fresh empty host gets the INPUT (replica rule re-homes it), not the
  // task — affinity needs a confirmed holder.
  const SyncReply first = ds_.sync("w2", {});
  EXPECT_EQ(uids_of(first.download), std::vector<util::Auid>{input.uid});

  // Once w2 confirms the input, the task follows it there.
  const SyncReply second = ds_.sync("w2", {input.uid});
  EXPECT_EQ(uids_of(second.download), std::vector<util::Auid>{task.uid});
}

// --- Data Scheduler: host-table GC -------------------------------------------

TEST_F(SchedulerTest, DeadHostIsForgottenAfterConfiguredSweeps) {
  SchedulerConfig config;
  config.host_gc_sweeps = 2;
  DataScheduler ds(clock_, config);
  ds.sync("churned", {});

  clock_.advance(10.0);  // > 3 heartbeats
  EXPECT_EQ(ds.detect_failures(), std::vector<services::HostName>{"churned"});
  ASSERT_EQ(ds.host_table().size(), 1u);   // dead 1 sweep: still listed...
  EXPECT_FALSE(ds.host_table()[0].alive);
  ds.detect_failures();
  EXPECT_EQ(ds.host_table().size(), 1u);   // ...dead 2 sweeps: still listed...
  ds.detect_failures();
  EXPECT_TRUE(ds.host_table().empty());    // ...3rd sweep past the limit: forgotten
  EXPECT_EQ(ds.stats().hosts_gcd, 1u);
}

TEST_F(SchedulerTest, DefaultConfigNeverForgetsDeadHosts) {
  ds_.sync("churned", {});
  clock_.advance(10.0);
  for (int sweep = 0; sweep < 5; ++sweep) ds_.detect_failures();
  ASSERT_EQ(ds_.host_table().size(), 1u);  // host_gc_sweeps=0: listed forever
  EXPECT_FALSE(ds_.host_table()[0].alive);
  EXPECT_EQ(ds_.stats().hosts_gcd, 0u);
}

TEST_F(SchedulerTest, ReturningHostRestartsItsGcCountdown) {
  SchedulerConfig config;
  config.host_gc_sweeps = 2;
  DataScheduler ds(clock_, config);
  ds.sync("flaky", {});
  clock_.advance(10.0);
  ds.detect_failures();
  ds.detect_failures();  // dead 2 sweeps — one more would forget it

  ds.sync("flaky", {});  // the host returns: countdown resets
  clock_.advance(10.0);
  ds.detect_failures();
  ds.detect_failures();
  EXPECT_EQ(ds.host_table().size(), 1u);  // 2 sweeps again, NOT 4
  ds.detect_failures();
  EXPECT_TRUE(ds.host_table().empty());
  EXPECT_EQ(ds.stats().hosts_gcd, 1u);
}

// --- Job service: compute-to-data --------------------------------------------

class JobServiceTest : public ::testing::Test {
 protected:
  JobServiceTest() : container_("server", clock_) {}

  /// A DC-registered input scheduled into Θ and confirmed on `host`.
  Data confirmed_input(const std::string& name, const std::string& host) {
    const Data data = make_data(name);
    EXPECT_TRUE(container_.dc().register_data(data));
    DataAttributes attributes;
    attributes.replica = 1;
    attributes.fault_tolerant = true;
    EXPECT_TRUE(container_.schedule_data(data, attributes));
    container_.ds().sync(host, {});
    container_.ds().sync(host, {data.uid});
    return data;
  }

  /// A registered collector token, scheduled {replica=0}, pinned + held on
  /// `host` — the demo/CLI collector pattern.
  Data collector_on(const std::string& host) {
    const Data token = make_data("collector", 0);
    EXPECT_TRUE(container_.dc().register_data(token));
    DataAttributes attributes;
    attributes.replica = 0;
    EXPECT_TRUE(container_.schedule_data(token, attributes));
    EXPECT_TRUE(container_.ds().pin(token.uid, host));
    container_.ds().sync(host, {});
    container_.ds().sync(host, {token.uid});
    return token;
  }

  jobs::JobSpec make_spec(const std::vector<util::Auid>& inputs,
                          const util::Auid& collector) {
    jobs::JobSpec spec;
    spec.uid = util::next_auid();
    spec.name = "grep";
    spec.argv = {"/bin/sh", "-c", "true"};
    spec.inputs = inputs;
    spec.collector = collector;
    return spec;
  }

  /// The task datum the job placed for `input`, as seen from `host`'s sync
  /// (nil uid when none arrived).
  util::Auid task_delivered_to(const std::string& host, const util::Auid& input) {
    const SyncReply reply = container_.ds().sync(host, {input});
    for (const ScheduledData& item : reply.download) {
      if (item.attributes.name == jobs::kTaskAttributeName) return item.data.uid;
    }
    return {};
  }

  util::ManualClock clock_;
  services::ServiceContainer container_;
};

TEST_F(JobServiceTest, SubmitValidatesTheSpec) {
  const Data input = confirmed_input("chunk", "w1");
  const Data token = collector_on("coll");
  jobs::JobSpec good = make_spec({input.uid}, token.uid);

  jobs::JobSpec spec = good;
  spec.uid = {};
  EXPECT_EQ(container_.jobs().submit(spec).code(), api::Errc::kInvalidArgument);

  spec = good;
  spec.argv.clear();
  EXPECT_EQ(container_.jobs().submit(spec).code(), api::Errc::kInvalidArgument);

  spec = good;
  spec.inputs.clear();
  EXPECT_EQ(container_.jobs().submit(spec).code(), api::Errc::kInvalidArgument);

  spec = good;
  spec.timeout_s = -1;
  EXPECT_EQ(container_.jobs().submit(spec).code(), api::Errc::kInvalidArgument);

  spec = good;
  spec.inputs = {util::next_auid()};  // never registered
  EXPECT_EQ(container_.jobs().submit(spec).code(), api::Errc::kNotFound);

  spec = good;
  spec.collector = util::next_auid();
  EXPECT_EQ(container_.jobs().submit(spec).code(), api::Errc::kNotFound);

  // A registered but UNSCHEDULED collector is rejected: results scheduled
  // with affinity to it would never reach anyone.
  const Data homeless = make_data("homeless", 0);
  ASSERT_TRUE(container_.dc().register_data(homeless));
  spec = good;
  spec.collector = homeless.uid;
  EXPECT_EQ(container_.jobs().submit(spec).code(), api::Errc::kRejected);

  ASSERT_TRUE(container_.jobs().submit(good).ok());
  EXPECT_EQ(container_.jobs().submit(good).code(), api::Errc::kDuplicate);
}

TEST_F(JobServiceTest, TasksArePlacedOnTheInputHolder) {
  const Data input = confirmed_input("chunk", "w1");
  const Data token = collector_on("coll");
  ASSERT_TRUE(container_.jobs().submit(make_spec({input.uid}, token.uid)).ok());

  // The task datum rides Algorithm 1: zero-size, affinity to the input,
  // delivered exactly to the holder.
  const SyncReply reply = container_.ds().sync("w1", {input.uid});
  ASSERT_EQ(reply.download.size(), 1u);
  EXPECT_EQ(reply.download[0].data.size, 0);
  EXPECT_EQ(reply.download[0].attributes.name, jobs::kTaskAttributeName);
  EXPECT_EQ(reply.download[0].attributes.affinity, input.uid);
  EXPECT_EQ(reply.download[0].attributes.replica, 0);
  EXPECT_TRUE(container_.ds().sync("w2", {}).download.empty());
}

TEST_F(JobServiceTest, FirstClaimWinsLaterClaimsAreRejected) {
  const Data input = confirmed_input("chunk", "w1");
  const Data token = collector_on("coll");
  const auto job = container_.jobs().submit(make_spec({input.uid}, token.uid));
  ASSERT_TRUE(job.ok());
  const util::Auid task = task_delivered_to("w1", input.uid);
  ASSERT_FALSE(task.is_nil());

  const auto order = container_.jobs().claim(task, "w1");
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->job, *job);
  EXPECT_EQ(order->input.uid, input.uid);
  EXPECT_EQ(order->argv, (std::vector<std::string>{"/bin/sh", "-c", "true"}));

  // The claim race: a second claimant stands down on kRejected.
  EXPECT_EQ(container_.jobs().claim(task, "w2").code(), api::Errc::kRejected);
  EXPECT_EQ(container_.jobs().claim(util::next_auid(), "w2").code(),
            api::Errc::kNotFound);

  const auto status = container_.jobs().status(*job);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->running, 1);
  EXPECT_EQ(status->tasks[0].runner, "w1");
}

TEST_F(JobServiceTest, SuccessfulReportSchedulesResultOntoTheCollector) {
  const Data input = confirmed_input("chunk", "w1");
  const Data token = collector_on("coll");
  const auto job = container_.jobs().submit(make_spec({input.uid}, token.uid));
  ASSERT_TRUE(job.ok());
  const util::Auid task = task_delivered_to("w1", input.uid);
  ASSERT_TRUE(container_.jobs().claim(task, "w1").ok());

  jobs::TaskReport report;
  report.task = task;
  report.runner = "w1";
  report.ok = true;
  report.data_local = true;
  report.result = make_data("grep-result-0");
  ASSERT_TRUE(container_.jobs().report(report).ok());

  const auto status = container_.jobs().status(*job);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->complete());
  EXPECT_EQ(status->data_local, 1);
  EXPECT_EQ(status->tasks[0].result, report.result.uid);

  // The result datum entered Θ with the affinity chain back to the
  // collector and a lifetime that dies with it; the spent task datum left Θ.
  const auto scheduled = container_.ds().scheduled(report.result.uid);
  ASSERT_TRUE(scheduled.has_value());
  EXPECT_EQ(scheduled->attributes.replica, 0);
  EXPECT_EQ(scheduled->attributes.affinity, token.uid);
  EXPECT_EQ(scheduled->attributes.lifetime.kind, core::Lifetime::Kind::kRelative);
  EXPECT_EQ(scheduled->attributes.lifetime.reference, token.uid);
  EXPECT_FALSE(container_.ds().scheduled(task).has_value());

  // And it flows to the collector's node via pure Algorithm 1.
  const SyncReply at_collector = container_.ds().sync("coll", {token.uid});
  EXPECT_EQ(uids_of(at_collector.download),
            std::vector<util::Auid>{report.result.uid});
}

TEST_F(JobServiceTest, FailedReportRequeuesUnderAFreshTaskDatum) {
  const Data input = confirmed_input("chunk", "w1");
  const Data token = collector_on("coll");
  const auto job = container_.jobs().submit(make_spec({input.uid}, token.uid));
  ASSERT_TRUE(job.ok());
  const util::Auid task = task_delivered_to("w1", input.uid);
  ASSERT_TRUE(container_.jobs().claim(task, "w1").ok());

  jobs::TaskReport report;
  report.task = task;
  report.runner = "w1";
  report.ok = false;
  report.exit_code = 2;
  ASSERT_TRUE(container_.jobs().report(report).ok());

  const auto status = container_.jobs().status(*job);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->waiting, 1);
  EXPECT_EQ(status->replaced, 1);
  EXPECT_EQ(status->tasks[0].attempts, 2);

  // A FRESH uid re-fires on_data_copy on every holder of the input; the old
  // datum is retired so nobody claims a stale placement.
  EXPECT_FALSE(container_.ds().scheduled(task).has_value());
  const util::Auid fresh = task_delivered_to("w1", input.uid);
  ASSERT_FALSE(fresh.is_nil());
  EXPECT_NE(fresh, task);
  EXPECT_EQ(container_.jobs().claim(task, "w1").code(), api::Errc::kNotFound);
  EXPECT_TRUE(container_.jobs().claim(fresh, "w1").ok());
}

TEST_F(JobServiceTest, SweepRequeuesTasksWhoseRunnerDied) {
  const Data input = confirmed_input("chunk", "w1");
  const Data token = collector_on("coll");
  const auto job = container_.jobs().submit(make_spec({input.uid}, token.uid));
  ASSERT_TRUE(job.ok());
  const util::Auid task = task_delivered_to("w1", input.uid);
  ASSERT_TRUE(container_.jobs().claim(task, "w1").ok());

  // Keep everyone else beating so only w1 times out.
  clock_.advance(10.0);
  container_.ds().sync("coll", {token.uid});
  container_.ds().detect_failures();
  EXPECT_FALSE(container_.ds().host_alive("w1"));

  EXPECT_EQ(container_.jobs().sweep(), 1u);
  const auto status = container_.jobs().status(*job);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->running, 0);
  EXPECT_EQ(status->waiting, 1);
  EXPECT_EQ(status->replaced, 1);
  EXPECT_EQ(container_.jobs().sweep(), 0u);  // idempotent until something changes
}

TEST_F(JobServiceTest, UnclaimedTaskFallsBackToAnyHostAfterTimeout) {
  const Data input = confirmed_input("chunk", "w1");
  const Data token = collector_on("coll");
  ASSERT_TRUE(container_.jobs().submit(make_spec({input.uid}, token.uid)).ok());

  // Nobody claims; past fallback_after_s the sweep re-places the task with
  // the affinity cleared so ANY live host can take it.
  clock_.advance(container_.jobs().config().fallback_after_s + 1.0);
  container_.ds().sync("w2", {});  // an empty host, alive
  EXPECT_EQ(container_.jobs().sweep(), 1u);

  const SyncReply reply = container_.ds().sync("w2", {});
  bool task_arrived = false;
  for (const ScheduledData& item : reply.download) {
    if (item.attributes.name != jobs::kTaskAttributeName) continue;
    task_arrived = true;
    EXPECT_EQ(item.attributes.replica, 1);
    EXPECT_TRUE(item.attributes.affinity.is_nil());
  }
  EXPECT_TRUE(task_arrived);
}

TEST_F(JobServiceTest, TaskIsAbandonedAfterMaxAttempts) {
  const Data input = confirmed_input("chunk", "w1");
  const Data token = collector_on("coll");
  jobs::JobServiceConfig config;
  config.max_attempts = 1;
  container_.jobs().set_config(config);
  const auto job = container_.jobs().submit(make_spec({input.uid}, token.uid));
  ASSERT_TRUE(job.ok());
  const util::Auid task = task_delivered_to("w1", input.uid);
  ASSERT_TRUE(container_.jobs().claim(task, "w1").ok());

  jobs::TaskReport report;
  report.task = task;
  report.runner = "w1";
  report.ok = false;
  ASSERT_TRUE(container_.jobs().report(report).ok());

  const auto status = container_.jobs().status(*job);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->failed, 1);
  EXPECT_FALSE(status->complete());
  EXPECT_TRUE(task_delivered_to("w1", input.uid).is_nil());  // not re-placed
}

/// Jobs ride the container WAL: a restarted daemon still knows its jobs,
/// their claimed tasks, and keeps serving claims against them.
TEST_F(JobServiceTest, JobsSurviveContainerRestart) {
  const auto wal = std::filesystem::temp_directory_path() /
                   ("bitdew-jobs-wal-" + std::to_string(::getpid()));
  std::filesystem::remove(wal);
  util::ManualClock clock;
  util::Auid job_uid;
  util::Auid claimed;
  util::Auid waiting;
  {
    services::ServiceContainer container("server", clock, wal.string());
    const Data a = make_data("chunk-a");
    const Data b = make_data("chunk-b");
    const Data token = make_data("collector", 0);
    for (const Data& d : {a, b, token}) ASSERT_TRUE(container.dc().register_data(d));
    DataAttributes replicated;
    replicated.replica = 1;
    replicated.fault_tolerant = true;
    ASSERT_TRUE(container.schedule_data(a, replicated));
    ASSERT_TRUE(container.schedule_data(b, replicated));
    DataAttributes pinned;
    pinned.replica = 0;
    ASSERT_TRUE(container.schedule_data(token, pinned));
    ASSERT_TRUE(container.ds().pin(token.uid, "coll"));
    container.ds().sync("w1", {});
    container.ds().sync("w1", {a.uid, b.uid});

    jobs::JobSpec spec;
    spec.uid = util::next_auid();
    spec.name = "grep";
    spec.argv = {"/bin/sh", "-c", "true"};
    spec.inputs = {a.uid, b.uid};
    spec.collector = token.uid;
    const auto submitted = container.jobs().submit(spec);
    ASSERT_TRUE(submitted.ok());
    job_uid = *submitted;

    const SyncReply reply = container.ds().sync("w1", {a.uid, b.uid});
    for (const ScheduledData& item : reply.download) {
      if (item.attributes.affinity == a.uid) claimed = item.data.uid;
      if (item.attributes.affinity == b.uid) waiting = item.data.uid;
    }
    ASSERT_FALSE(claimed.is_nil());
    ASSERT_FALSE(waiting.is_nil());
    ASSERT_TRUE(container.jobs().claim(claimed, "w1").ok());
  }  // crash

  services::ServiceContainer reopened("server", clock, wal.string());
  EXPECT_EQ(reopened.jobs().job_count(), 1u);
  const auto status = reopened.jobs().status(job_uid);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->running, 1);
  EXPECT_EQ(status->waiting, 1);
  EXPECT_EQ(status->tasks[0].runner, "w1");
  // The restored index still serves the claim race.
  EXPECT_EQ(reopened.jobs().claim(claimed, "w2").code(), api::Errc::kRejected);
  EXPECT_TRUE(reopened.jobs().claim(waiting, "w2").ok());
  std::filesystem::remove(wal);
}

// --- container --------------------------------------------------------------------

TEST(ServiceContainer, WiresAllServices) {
  util::ManualClock clock;
  services::ServiceContainer container("server", clock);
  const Data data = make_data("x");
  EXPECT_TRUE(container.dc().register_data(data));
  container.dr().put(data, core::synthetic_content(1, data.size), "ftp");
  EXPECT_TRUE(container.dr().exists(data.uid));
  container.ds().schedule(data, DataAttributes{});
  EXPECT_EQ(container.ds().scheduled_count(), 1u);
  const auto ticket = container.dt().register_transfer(data, "server", "w", "ftp");
  EXPECT_TRUE(container.dt().ticket(ticket).has_value());
  EXPECT_EQ(container.host_name(), "server");
}

/// Crash recovery: a WAL-backed container reopened from its log restores
/// both the catalog (DewDB tables) and the scheduler's Θ (the ds_theta
/// mirror), so a restarted bitdewd keeps realizing the same attributes.
TEST(ServiceContainer, CatalogAndSchedulerSurviveRestart) {
  const auto wal = std::filesystem::temp_directory_path() /
                   ("bitdew-container-wal-" + std::to_string(::getpid()));
  std::filesystem::remove(wal);
  util::ManualClock clock;
  const Data genome = make_data("genome");
  const Data index = make_data("index");
  const Data transient = make_data("transient");
  const auto attr = [](int replica) {
    DataAttributes attributes;
    attributes.replica = replica;
    return attributes;
  };

  {
    services::ServiceContainer container("server", clock, wal.string());
    ASSERT_TRUE(container.dc().register_data(genome));
    ASSERT_TRUE(container.dc().register_data(index));

    DataAttributes replicated = attr(3);
    replicated.fault_tolerant = true;
    ASSERT_TRUE(container.schedule_data(genome, replicated));
    ASSERT_TRUE(container.schedule_data(index, attr(1)));
    ASSERT_TRUE(container.schedule_data(transient, attr(1)));
    ASSERT_TRUE(container.unschedule_data(transient.uid));  // erased from Θ
    ASSERT_EQ(container.ds().scheduled_count(), 2u);
  }  // "crash": the container dies; only the WAL remains

  services::ServiceContainer reopened("server", clock, wal.string());
  // Catalog state came back...
  EXPECT_TRUE(reopened.dc().get(genome.uid).has_value());
  EXPECT_TRUE(reopened.dc().get(index.uid).has_value());
  // ...and so did Θ, attributes included, minus the unscheduled datum.
  EXPECT_EQ(reopened.ds().scheduled_count(), 2u);
  const auto restored = reopened.ds().scheduled(genome.uid);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->attributes.replica, 3);
  EXPECT_TRUE(restored->attributes.fault_tolerant);
  EXPECT_FALSE(reopened.ds().scheduled(transient.uid).has_value());

  // The restored scheduler still runs Algorithm 1: a fresh reservoir host
  // gets the surviving data on its first synchronization.
  const SyncReply reply = reopened.ds().sync("worker-1", {});
  EXPECT_EQ(reply.download.size(), 2u);
  std::filesystem::remove(wal);
}

/// A duration lifetime is anchored ONCE, at first receipt: the WAL stores
/// the anchored absolute deadline, so a daemon restart must not re-anchor
/// and extend it. (Deployment-side requirement: bitdewd reads a
/// restart-stable clock — util::WallClock — so persisted readings keep
/// meaning across processes; ManualClock plays that stable clock here.)
TEST(ServiceContainer, RestartDoesNotExtendAnchoredLifetimes) {
  const auto wal = std::filesystem::temp_directory_path() /
                   ("bitdew-container-life-" + std::to_string(::getpid()));
  std::filesystem::remove(wal);
  util::ManualClock clock;
  clock.set(100.0);
  const Data ephemeral = make_data("ephemeral");

  {
    services::ServiceContainer container("server", clock, wal.string());
    DataAttributes attributes;
    attributes.replica = 1;
    attributes.lifetime = Lifetime::duration(50.0);  // abstime=50 at t=100
    ASSERT_TRUE(container.schedule_data(ephemeral, attributes));
  }

  clock.set(120.0);  // restart 20 s later: 30 s of life must remain
  {
    services::ServiceContainer reopened("server", clock, wal.string());
    const auto entry = reopened.ds().scheduled(ephemeral.uid);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->attributes.lifetime.kind, Lifetime::Kind::kAbsolute);
    EXPECT_DOUBLE_EQ(entry->attributes.lifetime.expires_at, 150.0);  // NOT 170
    clock.set(151.0);
    reopened.ds().sync("h1", {});
    EXPECT_EQ(reopened.ds().scheduled_count(), 0u);  // reaped on the original deadline
  }
  std::filesystem::remove(wal);
}

// --- Incremental sync (protocol v2) ------------------------------------------
// Delta beats {epoch, added, removed} must leave the scheduler in exactly
// the state an equivalent stream of full reports would, and every path that
// invalidates the scheduler's mirror (epoch skew, scheduler restart, a
// declared-dead host reviving) must force a full resync.

services::SyncRequest full_request(const std::string& host,
                                   std::vector<util::Auid> cache,
                                   std::vector<util::Auid> in_flight = {}) {
  services::SyncRequest request;
  request.host = host;
  request.full = true;
  request.added = std::move(cache);
  request.in_flight = std::move(in_flight);
  return request;
}

services::SyncRequest delta_request(const std::string& host, std::uint64_t epoch,
                                    std::vector<util::Auid> added = {},
                                    std::vector<util::Auid> removed = {},
                                    std::vector<util::Auid> in_flight = {}) {
  services::SyncRequest request;
  request.host = host;
  request.epoch = epoch;
  request.full = false;
  request.added = std::move(added);
  request.removed = std::move(removed);
  request.in_flight = std::move(in_flight);
  return request;
}

std::optional<services::HostInfo> host_row(const DataScheduler& ds,
                                           const std::string& name) {
  for (const services::HostInfo& row : ds.host_table()) {
    if (row.name == name) return row;
  }
  return std::nullopt;
}

TEST_F(SchedulerTest, DeltaStreamEquivalentToFullSyncStream) {
  // Two schedulers see the same schedule/unschedule sequence; worker "w"
  // reports to one with full syncs every beat and to the other with v2
  // deltas. Their Omega sets and host mirrors must never diverge.
  DataScheduler full_ds(clock_, SchedulerConfig{});
  const Data d1 = make_data("d1");
  const Data d2 = make_data("d2");
  ds_.schedule(d1, attr(1));
  full_ds.schedule(d1, attr(1));

  // Beat 1: first contact (full on both), d1 assigned.
  SyncReply delta_side = ds_.sync(full_request("w", {}));
  SyncReply full_side = full_ds.sync(full_request("w", {}));
  ASSERT_EQ(delta_side.download.size(), 1u);
  ASSERT_EQ(full_side.download.size(), 1u);
  ASSERT_GT(delta_side.epoch, 0u);

  // Beat 2: d1 arrived. Delta side announces only the addition.
  delta_side = ds_.sync(delta_request("w", delta_side.epoch, {d1.uid}));
  full_side = full_ds.sync(full_request("w", {d1.uid}));
  EXPECT_FALSE(delta_side.resync);
  EXPECT_EQ(delta_side.keep, std::vector<util::Auid>{d1.uid});
  EXPECT_EQ(full_side.keep, std::vector<util::Auid>{d1.uid});
  EXPECT_EQ(ds_.owners(d1.uid), full_ds.owners(d1.uid));

  // A second datum appears; both assign it on the next beat.
  ds_.schedule(d2, attr(1));
  full_ds.schedule(d2, attr(1));
  delta_side = ds_.sync(delta_request("w", delta_side.epoch));
  full_side = full_ds.sync(full_request("w", {d1.uid}));
  ASSERT_EQ(delta_side.download.size(), 1u);
  EXPECT_EQ(delta_side.download[0].data.uid, d2.uid);
  ASSERT_EQ(full_side.download.size(), 1u);
  // An empty delta's keep is empty (nothing newly confirmed); the full
  // report re-confirms the whole intersection every beat.
  EXPECT_TRUE(delta_side.keep.empty());
  EXPECT_EQ(full_side.keep, std::vector<util::Auid>{d1.uid});

  delta_side = ds_.sync(delta_request("w", delta_side.epoch, {d2.uid}));
  full_side = full_ds.sync(full_request("w", {d1.uid, d2.uid}));
  EXPECT_EQ(ds_.owners(d2.uid), full_ds.owners(d2.uid));

  // Unschedule d1: both sides emit the drop; the delta side acks it with a
  // `removed` entry, the full side by omitting d1 from its report.
  ds_.unschedule(d1.uid);
  full_ds.unschedule(d1.uid);
  delta_side = ds_.sync(delta_request("w", delta_side.epoch));
  full_side = full_ds.sync(full_request("w", {d1.uid, d2.uid}));
  EXPECT_EQ(delta_side.drop, std::vector<util::Auid>{d1.uid});
  EXPECT_EQ(full_side.drop, std::vector<util::Auid>{d1.uid});

  delta_side = ds_.sync(delta_request("w", delta_side.epoch, {}, {d1.uid}));
  full_side = full_ds.sync(full_request("w", {d2.uid}));
  EXPECT_TRUE(delta_side.drop.empty());
  EXPECT_TRUE(full_side.drop.empty());

  // Mirrors agree, beat for beat.
  const auto delta_row = host_row(ds_, "w");
  const auto full_row = host_row(full_ds, "w");
  ASSERT_TRUE(delta_row.has_value());
  ASSERT_TRUE(full_row.has_value());
  EXPECT_EQ(delta_row->cached, full_row->cached);
  EXPECT_EQ(delta_row->cached, 1u);
  EXPECT_GT(delta_row->delta_syncs, 0u);
  EXPECT_EQ(full_row->delta_syncs, 0u);
}

TEST_F(SchedulerTest, EpochMismatchForcesResync) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1));
  const SyncReply first = ds_.sync(full_request("w", {}));
  ASSERT_GT(first.epoch, 0u);

  // A delta with a foreign epoch is refused outright: no state changes, no
  // assignments — just the resync order.
  const std::uint64_t resyncs_before = ds_.stats().resyncs;
  const SyncReply refused = ds_.sync(delta_request("w", first.epoch + 7, {data.uid}));
  EXPECT_TRUE(refused.resync);
  EXPECT_TRUE(refused.download.empty());
  EXPECT_TRUE(refused.keep.empty());
  EXPECT_EQ(ds_.stats().resyncs, resyncs_before + 1);
  EXPECT_FALSE(ds_.owners(data.uid).contains("w"));

  // The follow-up full report is accepted and re-mints the epoch.
  const SyncReply recovered = ds_.sync(full_request("w", {data.uid}));
  EXPECT_FALSE(recovered.resync);
  EXPECT_GT(recovered.epoch, first.epoch);
  EXPECT_TRUE(ds_.owners(data.uid).contains("w"));
}

TEST_F(SchedulerTest, DeltaFromUnknownHostForcesResync) {
  const SyncReply reply = ds_.sync(delta_request("ghost", 3));
  EXPECT_TRUE(reply.resync);
  EXPECT_EQ(ds_.stats().resyncs, 1u);
}

TEST_F(SchedulerTest, SchedulerRestartForcesResyncAndRegrantsOwnership) {
  const Data data = make_data("d");
  std::uint64_t old_epoch = 0;
  {
    DataScheduler before(clock_, SchedulerConfig{});
    before.schedule(data, attr(1));
    before.sync(full_request("w", {}));
    old_epoch = before.sync(full_request("w", {data.uid})).epoch;
    ASSERT_GT(old_epoch, 0u);
  }
  // The replacement scheduler (same schedule state, fresh epochs — the
  // bitdewd restart path) has never seen "w": the stale-epoch delta is
  // refused, and the forced full report rebuilds mirror and Omega.
  DataScheduler after(clock_, SchedulerConfig{});
  after.schedule(data, attr(1));
  const SyncReply refused = after.sync(delta_request("w", old_epoch));
  EXPECT_TRUE(refused.resync);
  const SyncReply recovered = after.sync(full_request("w", {data.uid}));
  EXPECT_FALSE(recovered.resync);
  EXPECT_EQ(recovered.keep, std::vector<util::Auid>{data.uid});
  EXPECT_TRUE(after.owners(data.uid).contains("w"));
}

TEST_F(SchedulerTest, DeadHostRevivalResyncsAndRevocationStillFires) {
  // PR-4 semantics on the v2 path: data unscheduled while a host was
  // declared dead must still be revoked when the host rejoins — and the
  // rejoin must go through the resync handshake, because death zeroed the
  // host's epoch.
  const Data keep = make_data("keep");
  const Data revoked = make_data("revoked");
  ds_.schedule(keep, attr(1, true));
  ds_.schedule(revoked, attr(1, true));
  ds_.sync(full_request("w", {}));
  SyncReply reply = ds_.sync(full_request("w", {keep.uid, revoked.uid}));
  const std::uint64_t live_epoch = reply.epoch;
  ASSERT_TRUE(ds_.owners(revoked.uid).contains("w"));

  clock_.set(10.0);  // > 3x heartbeat: declared dead, epoch zeroed
  ds_.detect_failures();
  ASSERT_FALSE(host_row(ds_, "w")->alive);
  ds_.unschedule(revoked.uid);  // authoritative revocation while dead

  // The surviving cache rides back: stale-epoch delta -> resync order.
  const SyncReply refused = ds_.sync(delta_request("w", live_epoch));
  EXPECT_TRUE(refused.resync);
  // The full report re-grants `keep` and drops `revoked` (gone from Theta).
  const SyncReply rejoined = ds_.sync(full_request("w", {keep.uid, revoked.uid}));
  EXPECT_FALSE(rejoined.resync);
  EXPECT_EQ(rejoined.keep, std::vector<util::Auid>{keep.uid});
  EXPECT_EQ(rejoined.drop, std::vector<util::Auid>{revoked.uid});
  EXPECT_TRUE(ds_.owners(keep.uid).contains("w"));
  EXPECT_TRUE(host_row(ds_, "w")->alive);
}

TEST_F(SchedulerTest, DropOrderReemittedUntilAckedByRemovedDelta) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1));
  ds_.sync(full_request("w", {}));
  SyncReply reply = ds_.sync(full_request("w", {data.uid}));
  const std::uint64_t epoch = reply.epoch;

  ds_.unschedule(data.uid);
  // The drop order rides every beat until the worker reports the removal —
  // a lost reply must not orphan the replica on the worker.
  reply = ds_.sync(delta_request("w", epoch));
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{data.uid});
  reply = ds_.sync(delta_request("w", epoch));
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{data.uid});
  // The `removed` entry acks it; subsequent beats are clean.
  reply = ds_.sync(delta_request("w", epoch, {}, {data.uid}));
  EXPECT_TRUE(reply.drop.empty());
  reply = ds_.sync(delta_request("w", epoch));
  EXPECT_TRUE(reply.drop.empty());
}

TEST_F(SchedulerTest, DeltaAddedConfirmsPendingAssignment) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(2));
  SyncReply reply = ds_.sync(full_request("w1", {}));
  ASSERT_EQ(reply.download.size(), 1u);

  // The arrival delta confirms the provisional assignment: keep lists
  // exactly the newly confirmed datum, the pending slot clears, and the
  // replica rule sees one live owner.
  reply = ds_.sync(delta_request("w1", reply.epoch, {data.uid}));
  EXPECT_EQ(reply.keep, std::vector<util::Auid>{data.uid});
  EXPECT_TRUE(ds_.owners(data.uid).contains("w1"));
  // Second replica still goes to the next host.
  EXPECT_EQ(ds_.sync(full_request("w2", {})).download.size(), 1u);
}

TEST_F(SchedulerTest, DeltaRemovalRevokesOwnershipAndReschedules) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1, true));
  ds_.sync(full_request("w1", {}));
  SyncReply reply = ds_.sync(full_request("w1", {data.uid}));
  ASSERT_TRUE(ds_.owners(data.uid).contains("w1"));

  // The worker lost its replica (disk scrub): the `removed` delta revokes
  // ownership, and the replica rule heals in the same beat by re-assigning
  // the datum — exactly what a full report missing the datum would do.
  reply = ds_.sync(delta_request("w1", reply.epoch, {}, {data.uid}));
  EXPECT_FALSE(ds_.owners(data.uid).contains("w1"));
  ASSERT_EQ(reply.download.size(), 1u);
  EXPECT_EQ(reply.download[0].data.uid, data.uid);
}

TEST_F(SchedulerTest, HostTableReportsProtocolCounters) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1));
  SyncReply reply = ds_.sync(full_request("w", {}));
  ds_.sync(delta_request("w", reply.epoch, {data.uid}));
  ds_.sync(delta_request("w", reply.epoch));

  const auto row = host_row(ds_, "w");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->full_syncs, 1u);
  EXPECT_EQ(row->delta_syncs, 2u);
  EXPECT_EQ(row->last_delta_items, 0u);  // the last beat was an empty delta
  EXPECT_EQ(ds_.stats().full_syncs, 1u);
  EXPECT_EQ(ds_.stats().delta_syncs, 2u);
}

}  // namespace
}  // namespace bitdew
