// Service-core tests: DC/DR/DT behaviour and every branch of the Data
// Scheduler's Algorithm 1 (keep/expire/affinity/replica/broadcast/
// MaxDataSchedule/failure detection/pinning/relative-lifetime chains).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "core/attributes.hpp"
#include "services/container.hpp"
#include "util/clock.hpp"

namespace bitdew {
namespace {

using core::Data;
using core::DataAttributes;
using core::Lifetime;
using services::DataScheduler;
using services::SchedulerConfig;
using services::ScheduledData;
using services::SyncReply;

Data make_data(const std::string& name, std::int64_t size = 1000) {
  Data data;
  data.uid = util::next_auid();
  data.name = name;
  data.size = size;
  data.checksum = core::synthetic_content(data.uid.lo, size).checksum;
  return data;
}

std::vector<util::Auid> uids_of(const std::vector<ScheduledData>& items) {
  std::vector<util::Auid> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(item.data.uid);
  return out;
}

// --- Data Catalog ------------------------------------------------------------

class CatalogTest : public ::testing::Test {
 protected:
  db::Database database_;
  services::DataCatalog catalog_{database_};
};

TEST_F(CatalogTest, RegisterGetSearchRemove) {
  const Data data = make_data("genome");
  EXPECT_TRUE(catalog_.register_data(data));
  EXPECT_FALSE(catalog_.register_data(data));  // duplicate uid

  const auto got = catalog_.get(data.uid);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);

  EXPECT_EQ(catalog_.search("genome").size(), 1u);
  EXPECT_TRUE(catalog_.search("nope").empty());
  EXPECT_EQ(catalog_.search_one("genome")->uid, data.uid);

  EXPECT_TRUE(catalog_.remove(data.uid));
  EXPECT_FALSE(catalog_.remove(data.uid));
  EXPECT_FALSE(catalog_.get(data.uid).has_value());
}

TEST_F(CatalogTest, NamesAreNotUnique) {
  const Data a = make_data("shared");
  const Data b = make_data("shared");
  EXPECT_TRUE(catalog_.register_data(a));
  EXPECT_TRUE(catalog_.register_data(b));
  EXPECT_EQ(catalog_.search("shared").size(), 2u);
}

TEST_F(CatalogTest, LocatorsAttachAndCascadeDelete) {
  const Data data = make_data("with-locators");
  ASSERT_TRUE(catalog_.register_data(data));

  core::Locator locator;
  locator.data_uid = data.uid;
  locator.protocol = "ftp";
  locator.host = "server1";
  locator.path = "store/x";
  EXPECT_TRUE(catalog_.add_locator(locator));
  locator.host = "server2";
  EXPECT_TRUE(catalog_.add_locator(locator));
  EXPECT_EQ(catalog_.locators(data.uid).size(), 2u);

  // Locator for unknown data is rejected.
  core::Locator orphan = locator;
  orphan.data_uid = util::next_auid();
  EXPECT_FALSE(catalog_.add_locator(orphan));

  catalog_.remove(data.uid);
  EXPECT_TRUE(catalog_.locators(data.uid).empty());
}

// --- Data Repository -----------------------------------------------------------

TEST(Repository, PutGetRemove) {
  db::Database database;
  services::DataRepository repository(database, "server1");
  const Data data = make_data("blob", 4096);
  const auto content = core::synthetic_content(1, 4096);

  const core::Locator locator = repository.put(data, content, "ftp");
  EXPECT_EQ(locator.host, "server1");
  EXPECT_EQ(locator.protocol, "ftp");
  EXPECT_EQ(locator.data_uid, data.uid);

  ASSERT_TRUE(repository.exists(data.uid));
  EXPECT_EQ(repository.get(data.uid)->checksum, content.checksum);
  EXPECT_EQ(repository.stored_bytes(), 4096);
  EXPECT_EQ(repository.object_count(), 1u);

  // Re-put overwrites.
  const auto content2 = core::synthetic_content(2, 8192);
  repository.put(data, content2, "http");
  EXPECT_EQ(repository.stored_bytes(), 8192);
  EXPECT_EQ(repository.object_count(), 1u);

  EXPECT_TRUE(repository.remove(data.uid));
  EXPECT_FALSE(repository.remove(data.uid));
  EXPECT_FALSE(repository.get(data.uid).has_value());
}

// --- Data Transfer ---------------------------------------------------------------

class TransferServiceTest : public ::testing::Test {
 protected:
  db::Database database_;
  util::ManualClock clock_;
  services::DataTransfer dt_{database_, clock_};
};

TEST_F(TransferServiceTest, LifecycleCompletes) {
  const Data data = make_data("payload", 1000);
  const auto ticket = dt_.register_transfer(data, "server", "worker1", "ftp");
  EXPECT_EQ(dt_.active_count(), 1u);

  clock_.advance(0.5);
  dt_.monitor(ticket, 400);
  const auto snapshot = dt_.ticket(ticket);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->done_bytes, 400);
  EXPECT_DOUBLE_EQ(snapshot->last_monitored_at, 0.5);

  EXPECT_TRUE(dt_.complete(ticket, data.checksum, data.checksum));
  EXPECT_EQ(dt_.ticket(ticket)->state, services::TransferState::kDone);
  EXPECT_EQ(dt_.active_count(), 0u);
  EXPECT_EQ(dt_.stats().completed, 1u);
}

TEST_F(TransferServiceTest, ChecksumMismatchKeepsTicketActiveAndResets) {
  const Data data = make_data("payload", 1000);
  const auto ticket = dt_.register_transfer(data, "server", "worker1", "ftp");
  dt_.monitor(ticket, 1000);
  EXPECT_FALSE(dt_.complete(ticket, "badbadbad", data.checksum));
  const auto snapshot = dt_.ticket(ticket);
  EXPECT_EQ(snapshot->state, services::TransferState::kActive);
  EXPECT_EQ(snapshot->done_bytes, 0);  // distrusted payload discarded
  EXPECT_EQ(snapshot->attempts, 2);
  EXPECT_EQ(dt_.stats().checksum_rejects, 1u);
}

TEST_F(TransferServiceTest, FailureWithResumeKeepsOffset) {
  const Data data = make_data("payload", 1000);
  const auto ticket = dt_.register_transfer(data, "server", "worker1", "ftp");
  dt_.report_failure(ticket, 600, /*can_resume=*/true);
  EXPECT_EQ(dt_.ticket(ticket)->done_bytes, 600);
  EXPECT_EQ(dt_.ticket(ticket)->attempts, 2);
  EXPECT_EQ(dt_.stats().resumes, 1u);

  dt_.report_failure(ticket, 0, /*can_resume=*/false);
  EXPECT_EQ(dt_.ticket(ticket)->done_bytes, 0);  // restart from scratch

  dt_.give_up(ticket);
  EXPECT_EQ(dt_.ticket(ticket)->state, services::TransferState::kFailed);
  EXPECT_EQ(dt_.active_count(), 0u);
}

// --- Data Scheduler: Algorithm 1 ----------------------------------------------

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : ds_(clock_, SchedulerConfig{}) {}

  DataAttributes attr(int replica, bool ft = false) {
    DataAttributes attributes;
    attributes.replica = replica;
    attributes.fault_tolerant = ft;
    return attributes;
  }

  util::ManualClock clock_;
  DataScheduler ds_;
};

TEST_F(SchedulerTest, ReplicaRuleSchedulesUpToTarget) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(2));

  // First two hosts get it, third does not.
  EXPECT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  EXPECT_EQ(ds_.sync("h2", {}).download.size(), 1u);
  EXPECT_TRUE(ds_.sync("h3", {}).download.empty());
  // Ownership is confirmed once the hosts report the datum cached.
  ds_.sync("h1", {data.uid});
  ds_.sync("h2", {data.uid});
  EXPECT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h1", "h2"}));
}

TEST_F(SchedulerTest, UnconfirmedAssignmentExpiresAndIsRescheduled) {
  // A host that accepts an assignment but never confirms (failed download)
  // must not absorb the replica forever: after the 3x-heartbeat TTL the
  // datum is offered to someone else.
  const Data data = make_data("slippery");
  ds_.schedule(data, attr(1));
  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  // Within the TTL the assignment holds: nobody else gets it.
  clock_.set(1.0);
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());
  // h1 keeps syncing but never reports the datum (nor in-flight).
  clock_.set(2.0);
  ds_.sync("h1", {});
  clock_.set(4.0);  // past the 3 s TTL
  EXPECT_EQ(ds_.sync("h2", {}).download.size(), 1u);
}

TEST_F(SchedulerTest, InFlightReportKeepsAssignmentAlive) {
  const Data data = make_data("long-download");
  ds_.schedule(data, attr(1));
  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  // h1 reports the download in flight well past the original TTL.
  for (int t = 1; t <= 10; ++t) {
    clock_.set(t);
    ds_.sync("h1", {}, {data.uid});
    EXPECT_TRUE(ds_.sync("h2", {}).download.empty()) << "t=" << t;
  }
}

TEST_F(SchedulerTest, BroadcastReplicaGoesEverywhere) {
  const Data data = make_data("everywhere");
  ds_.schedule(data, attr(core::kReplicaAll));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ds_.sync("host" + std::to_string(i), {}).download.size(), 1u);
  }
}

TEST_F(SchedulerTest, CachedDataIsKeptAndOwnersUpdated) {
  const Data data = make_data("kept");
  ds_.schedule(data, attr(1));
  const SyncReply first = ds_.sync("h1", {});
  ASSERT_EQ(first.download.size(), 1u);

  const SyncReply second = ds_.sync("h1", {data.uid});
  EXPECT_EQ(second.keep, std::vector<util::Auid>{data.uid});
  EXPECT_TRUE(second.download.empty());
  EXPECT_TRUE(second.drop.empty());
  EXPECT_TRUE(ds_.owners(data.uid).contains("h1"));
}

TEST_F(SchedulerTest, UnknownCachedDataIsDropped) {
  const Data stranger = make_data("not-scheduled");
  const SyncReply reply = ds_.sync("h1", {stranger.uid});
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{stranger.uid});
}

TEST_F(SchedulerTest, AbsoluteLifetimeExpires) {
  const Data data = make_data("mortal");
  DataAttributes attributes = attr(1);
  attributes.lifetime = Lifetime::absolute(10.0);
  ds_.schedule(data, attributes);

  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  clock_.set(11.0);
  const SyncReply reply = ds_.sync("h1", {data.uid});
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{data.uid});
  EXPECT_EQ(ds_.scheduled_count(), 0u);  // reaped from Θ
}

TEST_F(SchedulerTest, RelativeLifetimeCascades) {
  // The Collector pattern: Genebase and Result die with the Collector.
  const Data collector = make_data("collector");
  const Data genebase = make_data("genebase");
  const Data result = make_data("result");
  ds_.schedule(collector, attr(1));

  DataAttributes genebase_attr = attr(1);
  genebase_attr.lifetime = Lifetime::relative(collector.uid);
  ds_.schedule(genebase, genebase_attr);

  DataAttributes result_attr = attr(1);
  result_attr.lifetime = Lifetime::relative(genebase.uid);  // chain of two
  ds_.schedule(result, result_attr);

  EXPECT_EQ(ds_.sync("h1", {}).download.size(), 3u);
  ds_.unschedule(collector.uid);
  // Both dependents expire transitively.
  EXPECT_EQ(ds_.scheduled_count(), 0u);
  const SyncReply reply = ds_.sync("h1", {collector.uid, genebase.uid, result.uid});
  EXPECT_EQ(reply.drop.size(), 3u);
}

TEST_F(SchedulerTest, AffinityFollowsReference) {
  const Data sequence = make_data("sequence");
  const Data genebase = make_data("genebase");
  ds_.schedule(sequence, attr(1));

  DataAttributes follows = attr(0);
  follows.affinity = sequence.uid;
  ds_.schedule(genebase, follows);

  // h1 receives the sequence on its first sync; genebase only follows once
  // the sequence is actually cached.
  const SyncReply first = ds_.sync("h1", {});
  EXPECT_EQ(uids_of(first.download), std::vector<util::Auid>{sequence.uid});

  const SyncReply second = ds_.sync("h1", {sequence.uid});
  EXPECT_EQ(uids_of(second.download), std::vector<util::Auid>{genebase.uid});

  // A host without the sequence never receives the genebase.
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty() ||
              uids_of(ds_.sync("h2", {}).download) == std::vector<util::Auid>{});
}

TEST_F(SchedulerTest, AffinityIsStrongerThanReplica) {
  // Paper: if A is on rn nodes and B has affinity on A, B lands on all rn
  // nodes regardless of B.replica.
  const Data a = make_data("A");
  ds_.schedule(a, attr(3));
  DataAttributes b_attr = attr(0);
  const Data b = make_data("B");
  b_attr.affinity = a.uid;
  ds_.schedule(b, b_attr);

  for (const std::string host : {"h1", "h2", "h3"}) {
    ASSERT_EQ(ds_.sync(host, {}).download.size(), 1u);
    const SyncReply follow = ds_.sync(host, {a.uid});
    EXPECT_EQ(uids_of(follow.download), std::vector<util::Auid>{b.uid}) << host;
    ds_.sync(host, {a.uid, b.uid});  // confirm ownership
  }
  EXPECT_EQ(ds_.owners(b.uid).size(), 3u);
}

TEST_F(SchedulerTest, MaxDataScheduleCapsDownloads) {
  SchedulerConfig config;
  config.max_data_schedule = 3;
  DataScheduler capped(clock_, config);
  for (int i = 0; i < 10; ++i) capped.schedule(make_data("d" + std::to_string(i)), attr(1));
  EXPECT_EQ(capped.sync("h1", {}).download.size(), 3u);
  EXPECT_EQ(capped.sync("h1", {}).download.size(), 3u);  // next batch follows
}

TEST_F(SchedulerTest, FaultTolerantDataIsRescheduledAfterTimeout) {
  const Data data = make_data("precious");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);
  ds_.sync("h1", {data.uid});
  EXPECT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h1"}));

  // h1 goes silent; h2 keeps syncing.
  clock_.set(10.0);  // > 3x heartbeat of 1s
  const auto dead = ds_.detect_failures();
  EXPECT_EQ(dead, std::vector<std::string>{"h1"});
  EXPECT_FALSE(ds_.host_alive("h1"));

  const SyncReply reply = ds_.sync("h2", {});
  EXPECT_EQ(uids_of(reply.download), std::vector<util::Auid>{data.uid});
}

TEST_F(SchedulerTest, NonFaultTolerantDataIsNotRescheduled) {
  const Data data = make_data("fragile");
  ds_.schedule(data, attr(1, /*ft=*/false));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});

  clock_.set(10.0);
  ds_.detect_failures();
  // Owner list unchanged -> nothing to reschedule.
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());
  EXPECT_TRUE(ds_.owners(data.uid).contains("h1"));
}

TEST_F(SchedulerTest, FailureDetectionUsesThreeHeartbeats) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1, true));
  ds_.sync("h1", {data.uid});
  clock_.set(2.9);  // below 3x1s timeout
  EXPECT_TRUE(ds_.detect_failures().empty());
  clock_.set(3.1);
  EXPECT_EQ(ds_.detect_failures().size(), 1u);
}

TEST_F(SchedulerTest, PinnedDataSurvivesFailureDetection) {
  const Data data = make_data("pinned");
  ds_.schedule(data, attr(1, true));
  ds_.pin(data.uid, "master");
  EXPECT_TRUE(ds_.owners(data.uid).contains("master"));

  clock_.set(100.0);
  ds_.sync("worker", {});  // triggers reap/failure bookkeeping paths
  ds_.detect_failures();
  EXPECT_TRUE(ds_.owners(data.uid).contains("master"));
}

TEST_F(SchedulerTest, RecoveredHostCountsAgain) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1, true));
  ds_.sync("h1", {data.uid});
  clock_.set(10.0);
  ds_.detect_failures();
  EXPECT_FALSE(ds_.host_alive("h1"));
  // Host resumes syncing: alive again, replica satisfied by its cache.
  const SyncReply reply = ds_.sync("h1", {data.uid});
  EXPECT_EQ(reply.keep.size(), 1u);
  EXPECT_TRUE(ds_.host_alive("h1"));
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());
}

TEST_F(SchedulerTest, RejoinAfterReplacementDoesNotResurrectAssignments) {
  // A host that times out, is declared dead, and later syncs again (e.g. a
  // restarted worker with an empty cache) must be readmitted — but the
  // assignment it lost, already re-placed on a survivor, must NOT be
  // resurrected: neither its stale in_flight claim nor its reappearance may
  // pull the replica back or double-assign it.
  const Data data = make_data("precious");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ASSERT_EQ(ds_.sync("h1", {}).download.size(), 1u);  // assigned to h1
  ds_.sync("h1", {data.uid});                         // h1 confirms ownership
  ASSERT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h1"}));

  // h1 goes silent past the 3x-heartbeat timeout and is declared dead.
  clock_.set(10.0);
  ds_.sync("h2", {});  // h2 is alive and empty
  ASSERT_EQ(ds_.detect_failures(), std::vector<std::string>{"h1"});

  // The replica is re-placed on h2 and confirmed there.
  ASSERT_EQ(ds_.sync("h2", {}).download.size(), 1u);
  ds_.sync("h2", {data.uid});
  ASSERT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h2"}));

  // h1 rejoins, restarted with an empty cache but a stale in_flight claim.
  const SyncReply rejoin = ds_.sync("h1", {}, {data.uid});
  EXPECT_TRUE(ds_.host_alive("h1"));        // readmitted
  EXPECT_TRUE(rejoin.download.empty());     // replica satisfied by h2
  EXPECT_TRUE(rejoin.drop.empty());
  // The stale claim must not have re-entered the credible-owner count, nor
  // displaced h2.
  EXPECT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h2"}));

  // And future placement decisions see exactly one credible owner: a third
  // host is not assigned the datum either.
  EXPECT_TRUE(ds_.sync("h3", {}).download.empty());
}

TEST_F(SchedulerTest, RejoinWithSurvivingCacheIsReconfirmedNotReassigned) {
  // Variant: the partitioned host kept its replica on disk. On rejoin the
  // cache report re-confirms ownership (the host demonstrably holds the
  // bytes) without issuing any new download order.
  const Data data = make_data("kept");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});

  clock_.set(10.0);
  ds_.detect_failures();
  ASSERT_FALSE(ds_.host_alive("h1"));

  const SyncReply rejoin = ds_.sync("h1", {data.uid});
  EXPECT_TRUE(ds_.host_alive("h1"));
  EXPECT_EQ(rejoin.keep, std::vector<util::Auid>{data.uid});
  EXPECT_TRUE(rejoin.download.empty());
  EXPECT_TRUE(ds_.owners(data.uid).contains("h1"));
}

TEST_F(SchedulerTest, EmptyCacheReportRevokesOwnershipAndResends) {
  // A worker that restarts with a lost/corrupt replica reports Δk without
  // the datum. Its sync report is authoritative: ownership is revoked and
  // the replica rule re-sends the data — in the same sync.
  const Data data = make_data("lost");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});
  ASSERT_EQ(ds_.owners(data.uid), (std::set<std::string>{"h1"}));

  const SyncReply resent = ds_.sync("h1", {});
  EXPECT_EQ(uids_of(resent.download), std::vector<util::Auid>{data.uid});
  EXPECT_FALSE(ds_.owners(data.uid).contains("h1"));

  // An in-flight claim is not an ownership claim, but it does keep the
  // provisional assignment alive instead of re-revoking it.
  const SyncReply downloading = ds_.sync("h1", {}, {data.uid});
  EXPECT_TRUE(downloading.download.empty());

  // Pinned owners are permanent: an empty report never unpins the master.
  const Data pinned = make_data("pinned");
  ds_.schedule(pinned, attr(1, /*ft=*/true));
  ds_.pin(pinned.uid, "master");
  ds_.sync("master", {});
  EXPECT_TRUE(ds_.owners(pinned.uid).contains("master"));
}

TEST_F(SchedulerTest, HostTableReportsLivenessAndCacheSizes) {
  const Data data = make_data("d");
  ds_.schedule(data, attr(1, /*ft=*/true));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});
  clock_.set(2.0);
  ds_.sync("h2", {});
  clock_.set(4.0);  // h1 last synced at 0 -> dead; h2 at 2.0 -> alive
  ds_.detect_failures();

  const std::vector<services::HostInfo> table = ds_.host_table();
  ASSERT_EQ(table.size(), 2u);  // sorted by name
  EXPECT_EQ(table[0].name, "h1");
  EXPECT_FALSE(table[0].alive);
  EXPECT_DOUBLE_EQ(table[0].last_sync_age_s, 4.0);
  EXPECT_EQ(table[0].cached, 1u);
  EXPECT_EQ(table[1].name, "h2");
  EXPECT_TRUE(table[1].alive);
  EXPECT_DOUBLE_EQ(table[1].last_sync_age_s, 2.0);
  EXPECT_EQ(table[1].cached, 0u);
}

TEST_F(SchedulerTest, UnscheduleStopsFutureAssignment) {
  const Data data = make_data("gone");
  ds_.schedule(data, attr(5));
  ds_.sync("h1", {});
  EXPECT_TRUE(ds_.unschedule(data.uid));
  EXPECT_FALSE(ds_.unschedule(data.uid));
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());
  const SyncReply reply = ds_.sync("h1", {data.uid});
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{data.uid});
}

TEST_F(SchedulerTest, ReplicaIncreaseTriggersNewAssignments) {
  // The paper's dynamic strategy: bump replication when hosts outnumber
  // remaining tasks.
  const Data data = make_data("task");
  ds_.schedule(data, attr(1));
  ds_.sync("h1", {});
  EXPECT_TRUE(ds_.sync("h2", {}).download.empty());

  auto updated = attr(2);
  ds_.schedule(data, updated);
  EXPECT_EQ(ds_.sync("h2", {}).download.size(), 1u);
}

TEST_F(SchedulerTest, StatsAccumulate) {
  const Data data = make_data("counted");
  ds_.schedule(data, attr(1));
  ds_.sync("h1", {});
  ds_.sync("h1", {data.uid});
  EXPECT_EQ(ds_.stats().syncs, 2u);
  EXPECT_EQ(ds_.stats().orders, 1u);
}

// --- peer data plane: locators in the sync reply -------------------------------

TEST_F(SchedulerTest, DownloadOrdersCarryPeerLocatorsOfLiveHolders) {
  const Data data = make_data("swarmed");
  auto attributes = attr(2);
  attributes.protocol = "p2p";
  ASSERT_TRUE(ds_.schedule(data, attributes));

  // h1 is the seed: no owners yet, so no sources ride with its order.
  const SyncReply seed = ds_.sync("h1", {}, {}, "10.0.0.1:7001");
  ASSERT_EQ(seed.download.size(), 1u);
  ASSERT_EQ(seed.sources.size(), 1u);
  EXPECT_TRUE(seed.sources[0].empty());
  ds_.sync("h1", {data.uid}, {}, "10.0.0.1:7001");  // verified: h1 ∈ Ω

  // h2's order now names h1's chunk server.
  const SyncReply second = ds_.sync("h2", {}, {}, "10.0.0.2:7002");
  ASSERT_EQ(second.download.size(), 1u);
  ASSERT_EQ(second.sources.size(), 1u);
  ASSERT_EQ(second.sources[0].size(), 1u);
  EXPECT_EQ(second.sources[0][0].protocol, services::kPeerLocatorProtocol);
  EXPECT_EQ(second.sources[0][0].host, "10.0.0.1:7001");
  EXPECT_EQ(second.sources[0][0].path, "h1");
  EXPECT_EQ(second.sources[0][0].data_uid, data.uid);

  // The endpoint is visible in the host table too.
  const auto table = ds_.host_table();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].endpoint, "10.0.0.1:7001");
}

TEST_F(SchedulerTest, DeadAndEndpointlessHoldersAreFilteredFromSources) {
  const Data data = make_data("careful");
  auto attributes = attr(4);  // one more copy than the three holders below
  attributes.protocol = "p2p";
  attributes.fault_tolerant = false;  // dead owners stay in Ω — the filter
                                      // below must still exclude them
  ASSERT_TRUE(ds_.schedule(data, attributes));
  // Gate admits one download per generation: h1 seeds, then h2 and h3.
  ds_.sync("h1", {}, {}, "10.0.0.1:7001");
  ds_.sync("h1", {data.uid}, {}, "10.0.0.1:7001");
  ds_.sync("h2", {}, {}, "");  // h2 does not serve peers
  ds_.sync("h2", {data.uid}, {}, "");
  ds_.sync("h3", {}, {}, "10.0.0.3:7003");
  ds_.sync("h3", {data.uid}, {}, "10.0.0.3:7003");

  // h1 crashes: after the 3x-heartbeat timeout it is declared dead and its
  // locator must vanish from new orders even though it still owns a replica.
  clock_.set(10.0);
  ds_.sync("h2", {data.uid}, {}, "");
  ds_.sync("h3", {data.uid}, {}, "10.0.0.3:7003");
  ASSERT_FALSE(ds_.detect_failures().empty());
  ASSERT_TRUE(ds_.owners(data.uid).contains("h1"));  // not ft: Ω keeps h1

  const SyncReply order = ds_.sync("h4", {}, {}, "10.0.0.4:7004");
  ASSERT_EQ(order.download.size(), 1u);
  ASSERT_EQ(order.sources.size(), 1u);
  ASSERT_EQ(order.sources[0].size(), 1u);  // h1 dead, h2 endpoint-less
  EXPECT_EQ(order.sources[0][0].path, "h3");
}

TEST_F(SchedulerTest, SwarmGateDoublesP2pFanOutPerGeneration) {
  // Collective distribution: a replica=-1 p2p datum must not stampede the
  // repository — one seed first, then swarm_factor * |owners| in flight.
  const Data data = make_data("broadcast");
  DataAttributes attributes;
  attributes.replica = core::kReplicaAll;
  attributes.protocol = "p2p";
  ASSERT_TRUE(ds_.schedule(data, attributes));

  int ordered = 0;
  for (int h = 0; h < 6; ++h) {
    const std::string host = "h" + std::to_string(h);
    ordered += static_cast<int>(ds_.sync(host, {}, {}, host + ":7000").download.size());
  }
  EXPECT_EQ(ordered, 1);  // generation 0: the seed only

  ds_.sync("h0", {data.uid}, {}, "h0:7000");  // the seed verified
  ordered = 0;
  for (int h = 1; h < 6; ++h) {
    const std::string host = "h" + std::to_string(h);
    ordered += static_cast<int>(ds_.sync(host, {}, {}, host + ":7000").download.size());
  }
  EXPECT_EQ(ordered, 2);  // generation 1: 2 * |Ω| = 2

  // An oob=tcp broadcast is NOT gated: everyone downloads at once.
  const Data flat = make_data("flat");
  DataAttributes tcp_attributes;
  tcp_attributes.replica = core::kReplicaAll;
  tcp_attributes.protocol = "tcp";
  ASSERT_TRUE(ds_.schedule(flat, tcp_attributes));
  ordered = 0;
  for (int h = 0; h < 6; ++h) {
    const std::string host = "h" + std::to_string(h);
    for (const auto& item : ds_.sync(host, {}, {}, host + ":7000").download) {
      if (item.data.uid == flat.uid) ++ordered;
    }
  }
  EXPECT_EQ(ordered, 6);
}

// --- satellite bugfixes: abstime anchoring + protocol admission ---------------

TEST_F(SchedulerTest, DurationLifetimeIsAnchoredAtReceiptTime) {
  clock_.set(100.0);
  const Data data = make_data("ephemeral");
  auto attributes = attr(1);
  attributes.lifetime = Lifetime::duration(50.0);  // the DSL's abstime=50
  ASSERT_TRUE(ds_.schedule(data, attributes));

  // The stored entry is absolute on the scheduler's OWN clock.
  const auto stored = ds_.scheduled(data.uid);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->attributes.lifetime.kind, Lifetime::Kind::kAbsolute);
  EXPECT_DOUBLE_EQ(stored->attributes.lifetime.expires_at, 150.0);

  clock_.set(149.0);
  EXPECT_EQ(ds_.sync("h1", {}).download.size(), 1u);  // still alive
  clock_.set(151.0);
  const SyncReply reply = ds_.sync("h1", {data.uid});
  EXPECT_EQ(reply.drop, std::vector<util::Auid>{data.uid});  // reaped on time
  EXPECT_EQ(ds_.scheduled_count(), 0u);
}

TEST_F(SchedulerTest, UnknownOobProtocolIsRejectedAtScheduleTime) {
  const Data data = make_data("exotic");
  auto attributes = attr(1);
  attributes.protocol = "gridftp";  // nothing registered under this name
  EXPECT_FALSE(ds_.schedule(data, attributes));
  EXPECT_EQ(ds_.scheduled_count(), 0u);

  // An empty known_protocols set opts out (simulation experiments register
  // arbitrary protocols).
  SchedulerConfig permissive;
  permissive.known_protocols.clear();
  DataScheduler open_ds(clock_, permissive);
  EXPECT_TRUE(open_ds.schedule(data, attributes));
}

// --- container --------------------------------------------------------------------

TEST(ServiceContainer, WiresAllServices) {
  util::ManualClock clock;
  services::ServiceContainer container("server", clock);
  const Data data = make_data("x");
  EXPECT_TRUE(container.dc().register_data(data));
  container.dr().put(data, core::synthetic_content(1, data.size), "ftp");
  EXPECT_TRUE(container.dr().exists(data.uid));
  container.ds().schedule(data, DataAttributes{});
  EXPECT_EQ(container.ds().scheduled_count(), 1u);
  const auto ticket = container.dt().register_transfer(data, "server", "w", "ftp");
  EXPECT_TRUE(container.dt().ticket(ticket).has_value());
  EXPECT_EQ(container.host_name(), "server");
}

/// Crash recovery: a WAL-backed container reopened from its log restores
/// both the catalog (DewDB tables) and the scheduler's Θ (the ds_theta
/// mirror), so a restarted bitdewd keeps realizing the same attributes.
TEST(ServiceContainer, CatalogAndSchedulerSurviveRestart) {
  const auto wal = std::filesystem::temp_directory_path() /
                   ("bitdew-container-wal-" + std::to_string(::getpid()));
  std::filesystem::remove(wal);
  util::ManualClock clock;
  const Data genome = make_data("genome");
  const Data index = make_data("index");
  const Data transient = make_data("transient");
  const auto attr = [](int replica) {
    DataAttributes attributes;
    attributes.replica = replica;
    return attributes;
  };

  {
    services::ServiceContainer container("server", clock, wal.string());
    ASSERT_TRUE(container.dc().register_data(genome));
    ASSERT_TRUE(container.dc().register_data(index));

    DataAttributes replicated = attr(3);
    replicated.fault_tolerant = true;
    ASSERT_TRUE(container.schedule_data(genome, replicated));
    ASSERT_TRUE(container.schedule_data(index, attr(1)));
    ASSERT_TRUE(container.schedule_data(transient, attr(1)));
    ASSERT_TRUE(container.unschedule_data(transient.uid));  // erased from Θ
    ASSERT_EQ(container.ds().scheduled_count(), 2u);
  }  // "crash": the container dies; only the WAL remains

  services::ServiceContainer reopened("server", clock, wal.string());
  // Catalog state came back...
  EXPECT_TRUE(reopened.dc().get(genome.uid).has_value());
  EXPECT_TRUE(reopened.dc().get(index.uid).has_value());
  // ...and so did Θ, attributes included, minus the unscheduled datum.
  EXPECT_EQ(reopened.ds().scheduled_count(), 2u);
  const auto restored = reopened.ds().scheduled(genome.uid);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->attributes.replica, 3);
  EXPECT_TRUE(restored->attributes.fault_tolerant);
  EXPECT_FALSE(reopened.ds().scheduled(transient.uid).has_value());

  // The restored scheduler still runs Algorithm 1: a fresh reservoir host
  // gets the surviving data on its first synchronization.
  const SyncReply reply = reopened.ds().sync("worker-1", {});
  EXPECT_EQ(reply.download.size(), 2u);
  std::filesystem::remove(wal);
}

/// A duration lifetime is anchored ONCE, at first receipt: the WAL stores
/// the anchored absolute deadline, so a daemon restart must not re-anchor
/// and extend it. (Deployment-side requirement: bitdewd reads a
/// restart-stable clock — util::WallClock — so persisted readings keep
/// meaning across processes; ManualClock plays that stable clock here.)
TEST(ServiceContainer, RestartDoesNotExtendAnchoredLifetimes) {
  const auto wal = std::filesystem::temp_directory_path() /
                   ("bitdew-container-life-" + std::to_string(::getpid()));
  std::filesystem::remove(wal);
  util::ManualClock clock;
  clock.set(100.0);
  const Data ephemeral = make_data("ephemeral");

  {
    services::ServiceContainer container("server", clock, wal.string());
    DataAttributes attributes;
    attributes.replica = 1;
    attributes.lifetime = Lifetime::duration(50.0);  // abstime=50 at t=100
    ASSERT_TRUE(container.schedule_data(ephemeral, attributes));
  }

  clock.set(120.0);  // restart 20 s later: 30 s of life must remain
  {
    services::ServiceContainer reopened("server", clock, wal.string());
    const auto entry = reopened.ds().scheduled(ephemeral.uid);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->attributes.lifetime.kind, Lifetime::Kind::kAbsolute);
    EXPECT_DOUBLE_EQ(entry->attributes.lifetime.expires_at, 150.0);  // NOT 170
    clock.set(151.0);
    reopened.ds().sync("h1", {});
    EXPECT_EQ(reopened.ds().scheduled_count(), 0u);  // reaped on the original deadline
  }
  std::filesystem::remove(wal);
}

}  // namespace
}  // namespace bitdew
