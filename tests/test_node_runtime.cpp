// NodeRuntime: the live worker tier over real sockets. An in-process
// ServiceHost (bitdewd-equivalent, wall-clock failure sweep) on loopback,
// NodeRuntime workers heartbeating against it: scheduled data is pulled
// through the chunked TCP data plane and MD5-verified, ActiveData events
// fire on real arrivals/drops, the WAL-backed replica cache survives a
// worker restart (intact replicas re-verified, corrupt ones re-downloaded),
// and a killed worker's fault-tolerant replicas move to a survivor within
// the 3x-heartbeat failure timeout — the paper's Fig. 4 loop on live
// processes. Heartbeats are shortened (150 ms) to keep the suite fast.
//
// All scheduler introspection goes through the RPC surface (ds_hosts,
// ddc_search) rather than poking the container directly: the container is
// owned by the ServiceHost's threads, and this suite runs under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <thread>

#include "api/remote_service_bus.hpp"
#include "api/session.hpp"
#include "jobs/task_runner.hpp"
#include "rpc/server.hpp"
#include "runtime/node_runtime.hpp"

namespace bitdew {
namespace {

using api::Status;

constexpr double kHeartbeat = 0.15;

/// Counts life-cycle events (thread-safe: they fire on worker threads).
struct Recorder final : core::ActiveDataEventHandler {
  std::atomic<int> copies{0};
  std::atomic<int> deletes{0};
  void on_data_copy(const core::Data&, const core::DataAttributes&) override { ++copies; }
  void on_data_delete(const core::Data&, const core::DataAttributes&) override { ++deletes; }
};

bool wait_until(const std::function<bool()>& condition, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return condition();
}

struct WorkerRig {
  WorkerRig() {
    services::SchedulerConfig scheduler;
    scheduler.heartbeat_period_s = kHeartbeat;
    scheduler.failure_timeout_factor = 3.0;
    container = std::make_unique<services::ServiceContainer>("bitdewd", clock, scheduler);
    rpc::ServiceHostConfig config;
    config.loopback_only = true;
    config.failure_sweep_period_s = 0.05;
    host = std::make_unique<rpc::ServiceHost>(*container, ddc, config);
    const Status started = host->start();
    if (!started.ok()) throw std::runtime_error(started.error().to_string());

    dir = std::filesystem::temp_directory_path() /
          ("bitdew-noderuntime-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter()++));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    client_bus = std::make_unique<api::RemoteServiceBus>(std::string("127.0.0.1"),
                                                         host->port());
    bitdew = std::make_unique<api::BitDew>(*client_bus, "master");
    active_data = std::make_unique<api::ActiveData>(*client_bus, "master");
    session = std::make_unique<api::Session>(*bitdew, *active_data);
  }

  ~WorkerRig() {
    host->stop();
    std::filesystem::remove_all(dir);
  }

  static int& counter() {
    static int value = 0;
    return value;
  }

  std::unique_ptr<runtime::NodeRuntime> make_worker(const std::string& name) {
    runtime::NodeRuntimeConfig config;
    config.name = name;
    config.cache_dir = (dir / name).string();
    config.heartbeat_period_s = kHeartbeat;
    config.chunk_bytes = 64 * 1024;
    return std::make_unique<runtime::NodeRuntime>("127.0.0.1", host->port(), config);
  }

  /// Registers + uploads a deterministic payload and schedules it.
  core::Data publish(const std::string& name, std::size_t size, int replica,
                     bool fault_tolerant, const std::string& protocol = "tcp") {
    std::string bytes(size, '\0');
    for (std::size_t i = 0; i < size; ++i) {
      bytes[i] = static_cast<char>((i * 197 + 31) & 0xff);
    }
    const std::string path = (dir / (name + ".src")).string();
    std::ofstream(path, std::ios::binary) << bytes;
    const api::Expected<core::Data> data = session->put_file(name, path);
    EXPECT_TRUE(data.ok()) << (data.ok() ? "" : data.error().to_string());
    core::DataAttributes attributes;
    attributes.replica = replica;
    attributes.fault_tolerant = fault_tolerant;
    attributes.protocol = protocol;
    const Status scheduled = session->schedule(*data, attributes);
    EXPECT_TRUE(scheduled.ok());
    return *data;
  }

  /// Repository egress counters over the RPC surface.
  services::RepoStats repo_stats() {
    std::optional<api::Expected<services::RepoStats>> stats;
    client_bus->dr_stats(
        [&](api::Expected<services::RepoStats> reply) { stats = std::move(reply); });
    EXPECT_TRUE(stats.has_value() && stats->ok());
    return stats.has_value() && stats->ok() ? **stats : services::RepoStats{};
  }

  /// The scheduler's view of one worker, over the RPC surface.
  std::optional<services::HostInfo> host_row(const std::string& name) {
    std::optional<api::Expected<std::vector<services::HostInfo>>> table;
    client_bus->ds_hosts([&](api::Expected<std::vector<services::HostInfo>> reply) {
      table = std::move(reply);
    });
    if (!table.has_value() || !table->ok()) return std::nullopt;
    for (const services::HostInfo& info : **table) {
      if (info.name == name) return info;
    }
    return std::nullopt;
  }

  /// Replica locations published in the DDC by workers after verification.
  std::vector<std::string> ddc_locations(const util::Auid& uid) {
    std::optional<api::Expected<std::vector<std::string>>> values;
    client_bus->ddc_search(uid.str(), [&](api::Expected<std::vector<std::string>> reply) {
      values = std::move(reply);
    });
    if (!values.has_value() || !values->ok()) return {};
    return **values;
  }

  std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  util::SystemClock clock;
  std::unique_ptr<services::ServiceContainer> container;
  dht::LocalDht ddc;
  std::unique_ptr<rpc::ServiceHost> host;
  std::filesystem::path dir;
  std::unique_ptr<api::RemoteServiceBus> client_bus;
  std::unique_ptr<api::BitDew> bitdew;
  std::unique_ptr<api::ActiveData> active_data;
  std::unique_ptr<api::Session> session;
};

TEST(NodeRuntime, PullsScheduledDataVerifiedAndFiresCopyEvent) {
  WorkerRig rig;
  auto worker = rig.make_worker("w0");
  auto recorder = std::make_shared<Recorder>();
  worker->active_data().add_callback(recorder);
  ASSERT_TRUE(worker->start().ok());

  // Multi-chunk payload (3.5 chunks at the worker's 64 KB chunk size).
  const core::Data data = rig.publish("genome", 224 * 1024, 1, true);
  ASSERT_TRUE(worker->wait_for(data.uid, 15.0));

  // The replica on disk is byte-identical to the published content.
  const core::Content replica = core::file_content(worker->replica_path(data.uid));
  EXPECT_EQ(replica.checksum, data.checksum);
  EXPECT_EQ(replica.size, data.size);
  // Events are delivered from the runtime's executor thread, so the copy
  // callback may land a beat after the replica does.
  EXPECT_TRUE(wait_until([&] { return recorder->copies.load() == 1; }, 5.0));
  EXPECT_EQ(worker->stats().downloads_completed, 1u);

  // The control plane observed the arrival: the worker published its
  // replica location in the DDC, and the host table reports it alive with
  // one cached datum once the next sync confirms Δk.
  EXPECT_TRUE(wait_until(
      [&] {
        const auto locations = rig.ddc_locations(data.uid);
        return std::find(locations.begin(), locations.end(), "w0") != locations.end();
      },
      5.0));
  EXPECT_TRUE(wait_until(
      [&] {
        const auto row = rig.host_row("w0");
        return row.has_value() && row->alive && row->cached == 1;
      },
      5.0));

  worker->stop();
}

TEST(NodeRuntime, ZeroSizeDatumArrivesWithoutTransfer) {
  WorkerRig rig;
  auto worker = rig.make_worker("w0");
  ASSERT_TRUE(worker->start().ok());

  // A zero-size slot (the paper's Collector token): no bytes to move.
  const api::Expected<core::Data> token = rig.session->create_data("token");
  ASSERT_TRUE(token.ok());
  core::DataAttributes attributes;
  attributes.replica = 1;
  ASSERT_TRUE(rig.session->schedule(*token, attributes).ok());

  ASSERT_TRUE(worker->wait_for(token->uid, 15.0));
  EXPECT_EQ(worker->stats().downloads_completed, 0u);  // no transfer ran
  worker->stop();
}

TEST(NodeRuntime, SchedulerDropDeletesReplicaAndFiresDeleteEvent) {
  WorkerRig rig;
  auto worker = rig.make_worker("w0");
  auto recorder = std::make_shared<Recorder>();
  worker->active_data().add_callback(recorder);
  ASSERT_TRUE(worker->start().ok());

  const core::Data data = rig.publish("ephemeral", 64 * 1024, 1, false);
  ASSERT_TRUE(worker->wait_for(data.uid, 15.0));
  ASSERT_TRUE(std::filesystem::exists(worker->replica_path(data.uid)));

  ASSERT_TRUE(rig.session->unschedule(data).ok());
  EXPECT_TRUE(wait_until([&] { return !worker->has(data.uid); }, 15.0));
  EXPECT_TRUE(wait_until(
      [&] { return !std::filesystem::exists(worker->replica_path(data.uid)); }, 5.0));
  EXPECT_TRUE(wait_until([&] { return recorder->deletes.load() == 1; }, 5.0));
  worker->stop();
}

TEST(NodeRuntime, CacheSurvivesRestartWithoutRedownload) {
  WorkerRig rig;
  const core::Data data = [&] {
    auto worker = rig.make_worker("w0");
    EXPECT_TRUE(worker->start().ok());
    const core::Data published = rig.publish("durable", 96 * 1024, 1, true);
    EXPECT_TRUE(worker->wait_for(published.uid, 15.0));
    worker->stop();  // clean exit; cache + manifest stay on disk
    return published;
  }();

  // Same name, same cache dir: the manifest replays, the replica re-hashes
  // clean, and NO transfer runs — the worker re-announces it via ds_sync.
  auto restarted = rig.make_worker("w0");
  ASSERT_TRUE(restarted->start().ok());
  EXPECT_TRUE(restarted->has(data.uid));  // before any sync
  EXPECT_EQ(restarted->stats().restored, 1u);

  EXPECT_TRUE(wait_until(
      [&] {
        const auto row = rig.host_row("w0");
        return row.has_value() && row->alive && row->cached == 1;
      },
      10.0));
  EXPECT_EQ(restarted->stats().downloads_completed, 0u);
  restarted->stop();
}

TEST(NodeRuntime, CorruptCachedReplicaIsForgottenAndRedownloaded) {
  WorkerRig rig;
  const core::Data data = [&] {
    auto worker = rig.make_worker("w0");
    EXPECT_TRUE(worker->start().ok());
    const core::Data published = rig.publish("fragile", 96 * 1024, 1, true);
    EXPECT_TRUE(worker->wait_for(published.uid, 15.0));
    worker->stop();
    return published;
  }();

  // Flip bytes in the cached replica behind the worker's back.
  const std::string path = (rig.dir / "w0" / data.uid.str()).string();
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(1000);
    file.write("XXXX", 4);
  }

  auto restarted = rig.make_worker("w0");
  ASSERT_TRUE(restarted->start().ok());
  EXPECT_FALSE(restarted->has(data.uid));  // failed restart verification
  EXPECT_EQ(restarted->stats().restored, 0u);

  // The scheduler re-sends it; the worker re-downloads verified bytes.
  ASSERT_TRUE(restarted->wait_for(data.uid, 15.0));
  EXPECT_EQ(core::file_content(restarted->replica_path(data.uid)).checksum, data.checksum);
  EXPECT_EQ(restarted->stats().downloads_completed, 1u);
  restarted->stop();
}

// --- the peer data plane ------------------------------------------------------

TEST(NodeRuntime, PeerServesSecondWorkerWithZeroExtraRepositoryEgress) {
  WorkerRig rig;
  auto w0 = rig.make_worker("w0");
  ASSERT_TRUE(w0->start().ok());
  EXPECT_FALSE(w0->peer_endpoint().empty());

  // oob=p2p, replica=2: the swarm gate seeds ONE copy from the repository.
  const core::Data data = rig.publish("shared", 192 * 1024, 2, true, "p2p");
  ASSERT_TRUE(w0->wait_for(data.uid, 15.0));
  const services::RepoStats after_seed = rig.repo_stats();
  EXPECT_EQ(after_seed.chunk_read_bytes, data.size);  // exactly one file copy

  // The second worker's download order carries w0's locator; every byte of
  // its replica comes from w0's chunk server, none from the repository.
  auto w1 = rig.make_worker("w1");
  ASSERT_TRUE(w1->start().ok());
  ASSERT_TRUE(w1->wait_for(data.uid, 20.0));
  EXPECT_EQ(core::file_content(w1->replica_path(data.uid)).checksum, data.checksum);
  EXPECT_EQ(rig.repo_stats().chunk_read_bytes, after_seed.chunk_read_bytes);
  EXPECT_GT(w0->stats().peer_chunks_served, 0u);
  EXPECT_EQ(w0->stats().peer_bytes_served, data.size);
  w0->stop();
  w1->stop();
}

TEST(NodeRuntime, DeadPeerLocatorFallsBackToRepository) {
  WorkerRig rig;
  auto w0 = rig.make_worker("w0");
  ASSERT_TRUE(w0->start().ok());
  const core::Data data = rig.publish("risky", 128 * 1024, 2, true, "p2p");
  ASSERT_TRUE(w0->wait_for(data.uid, 15.0));

  // w0 dies AFTER confirming its replica but BEFORE the failure detector
  // notices: the next order still carries its (now dead) locator. The
  // second worker must rotate to the repository and verify cleanly.
  w0->stop();
  auto w1 = rig.make_worker("w1");
  ASSERT_TRUE(w1->start().ok());
  ASSERT_TRUE(w1->wait_for(data.uid, 20.0));
  EXPECT_EQ(core::file_content(w1->replica_path(data.uid)).checksum, data.checksum);
  w1->stop();
}

// --- satellite bugfix regressions ---------------------------------------------

TEST(NodeRuntime, OrphanedCacheFilesAreSweptAtRestart) {
  WorkerRig rig;
  const core::Data data = [&] {
    auto worker = rig.make_worker("w0");
    EXPECT_TRUE(worker->start().ok());
    const core::Data published = rig.publish("kept", 64 * 1024, 1, true);
    EXPECT_TRUE(worker->wait_for(published.uid, 15.0));
    worker->stop();
    return published;
  }();

  // Hand-plant the crash window's leftovers: a verified-looking replica
  // whose manifest row never landed, and a stale .part. Before the sweep
  // these leaked forever AND sat exactly where a re-assigned uid would land.
  const util::Auid orphan_uid = util::next_auid();
  const std::string orphan = (rig.dir / "w0" / orphan_uid.str()).string();
  std::ofstream(orphan, std::ios::binary) << std::string(5000, 'x');
  std::ofstream(orphan + ".part", std::ios::binary) << std::string(100, 'y');

  auto restarted = rig.make_worker("w0");
  ASSERT_TRUE(restarted->start().ok());
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_FALSE(std::filesystem::exists(orphan + ".part"));
  EXPECT_EQ(restarted->stats().orphans_swept, 2u);
  // The legitimate replica (manifest row present) survived the sweep.
  EXPECT_TRUE(std::filesystem::exists(restarted->replica_path(data.uid)));
  EXPECT_EQ(restarted->stats().restored, 1u);
  restarted->stop();
}

TEST(NodeRuntime, LiveAbstimeLifetimeAnchorsAtDaemonReceipt) {
  WorkerRig rig;
  auto worker = rig.make_worker("w0");
  ASSERT_TRUE(worker->start().ok());

  // Let the daemon's clock move past the duration first: with the old
  // client-anchored semantics (expires_at = 0 + 1.5) the datum would be
  // born expired and NEVER scheduled.
  std::this_thread::sleep_for(std::chrono::seconds(2));
  const core::Data data = rig.publish("short-lived", 32 * 1024, 1, false);
  const core::DataAttributes attributes =
      rig.bitdew->create_attribute("attr short-lived = {replica=1, oob=tcp, abstime=1.5}");
  ASSERT_EQ(attributes.lifetime.kind, core::Lifetime::Kind::kDuration);
  ASSERT_TRUE(rig.session->schedule(data, attributes).ok());

  // Anchored at receipt: the replica arrives...
  ASSERT_TRUE(worker->wait_for(data.uid, 15.0));
  // ...and expires ~1.5 s later, when the daemon reaps and the next sync
  // orders the drop.
  EXPECT_TRUE(wait_until([&] { return !worker->has(data.uid); }, 15.0));
  EXPECT_TRUE(wait_until(
      [&] { return !std::filesystem::exists(worker->replica_path(data.uid)); }, 5.0));
  worker->stop();
}

TEST(NodeRuntime, DefaultFtpProtocolIsDeliveredLiveThroughTheTcpAlias) {
  // DataAttributes defaults to oob=ftp (a simulator protocol). The
  // scheduler admits it, so the live registry must deliver it — the
  // central-pull alias — rather than leaving workers failing forever.
  WorkerRig rig;
  auto worker = rig.make_worker("w0");
  ASSERT_TRUE(worker->start().ok());
  const core::Data data = rig.publish("classic", 96 * 1024, 1, false, "ftp");
  ASSERT_TRUE(worker->wait_for(data.uid, 15.0));
  EXPECT_EQ(core::file_content(worker->replica_path(data.uid)).checksum, data.checksum);
  EXPECT_EQ(worker->stats().downloads_failed, 0u);
  worker->stop();
}

TEST(NodeRuntime, UnknownOobProtocolIsRejectedAtScheduleTimeNotSilentlyTcp) {
  WorkerRig rig;
  const core::Data data = [&] {
    core::Data d;
    std::string bytes(1024, 'z');
    const std::string path = (rig.dir / "exotic.src").string();
    std::ofstream(path, std::ios::binary) << bytes;
    const api::Expected<core::Data> put = rig.session->put_file("exotic", path);
    EXPECT_TRUE(put.ok());
    return put.ok() ? *put : d;
  }();
  core::DataAttributes attributes;
  attributes.replica = 1;
  attributes.protocol = "gridftp";  // no engine registered under this name
  const Status scheduled = rig.session->schedule(data, attributes);
  EXPECT_EQ(scheduled.code(), api::Errc::kRejected);
}

TEST(NodeRuntime, DeadWorkerReplicasMoveToSurvivor) {
  WorkerRig rig;
  auto w0 = rig.make_worker("w0");
  auto w1 = rig.make_worker("w1");
  ASSERT_TRUE(w0->start().ok());
  ASSERT_TRUE(w1->start().ok());

  const core::Data data = rig.publish("precious", 128 * 1024, 1, true);
  ASSERT_TRUE(wait_until([&] { return w0->has(data.uid) || w1->has(data.uid); }, 15.0));

  runtime::NodeRuntime* victim = w0->has(data.uid) ? w0.get() : w1.get();
  runtime::NodeRuntime* survivor = victim == w0.get() ? w1.get() : w0.get();
  ASSERT_FALSE(survivor->has(data.uid));  // replica=1: exactly one holder

  // kill -9 equivalent: the victim stops heartbeating without a goodbye.
  // Within 3 heartbeats the sweep declares it dead, the replica rule
  // re-places the datum, and the survivor downloads verified bytes.
  victim->stop();
  ASSERT_TRUE(survivor->wait_for(data.uid, 30.0));
  EXPECT_EQ(core::file_content(survivor->replica_path(data.uid)).checksum, data.checksum);

  // The host table records the death.
  EXPECT_TRUE(wait_until(
      [&] {
        const auto row = rig.host_row(victim->name());
        return row.has_value() && !row->alive;
      },
      10.0));
  survivor->stop();
}

/// A handler that parks its thread inside the first on_data_copy until the
/// test releases it — the adversarial ActiveData subscriber.
struct BlockingHandler final : core::ActiveDataEventHandler {
  std::atomic<int> copies{0};
  std::promise<void> gate;
  std::shared_future<void> released{gate.get_future().share()};
  void on_data_copy(const core::Data&, const core::DataAttributes&) override {
    if (++copies == 1) released.wait_for(std::chrono::seconds(30));
  }
  void on_data_delete(const core::Data&, const core::DataAttributes&) override {}
};

/// The callback-executor contract: ActiveData events are delivered from a
/// dedicated thread, so a handler that BLOCKS (a task runner forking a long
/// child, a slow user hook) must not stall heartbeats or transfers — later
/// data keeps arriving and the scheduler keeps seeing the node alive; the
/// blocked event queue just drains late.
TEST(NodeRuntime, BlockingEventHandlerDoesNotStallHeartbeatsOrTransfers) {
  WorkerRig rig;
  auto worker = rig.make_worker("w0");
  auto blocker = std::make_shared<BlockingHandler>();
  worker->active_data().add_callback(blocker);
  ASSERT_TRUE(worker->start().ok());

  const core::Data first = rig.publish("first", 64 * 1024, 1, true);
  ASSERT_TRUE(worker->wait_for(first.uid, 15.0));
  ASSERT_TRUE(wait_until([&] { return blocker->copies.load() == 1; }, 10.0));
  // The handler is now parked inside on_data_copy.

  // A second datum still arrives — the transfer threads are not the event
  // thread — and the heartbeat keeps confirming both replicas to the
  // scheduler, so the failure detector never fires.
  const core::Data second = rig.publish("second", 64 * 1024, 1, true);
  ASSERT_TRUE(worker->wait_for(second.uid, 15.0));
  EXPECT_EQ(blocker->copies.load(), 1);  // its event is queued behind the block
  ASSERT_TRUE(wait_until(
      [&] {
        const auto row = rig.host_row("w0");
        return row.has_value() && row->alive && row->cached == 2;
      },
      10.0));

  // Released, the queue drains and the second copy event is delivered.
  blocker->gate.set_value();
  EXPECT_TRUE(wait_until([&] { return blocker->copies.load() == 2; }, 10.0));
  EXPECT_TRUE(wait_until([&] { return worker->stats().events_dispatched >= 2; }, 5.0));
  worker->stop();
}

/// Compute-to-data end to end inside one test: a TaskRunner claims the task
/// placed on its input replica, runs a real child process, and the result
/// datum flows to the collector node over the affinity chain, byte-correct.
TEST(NodeRuntime, TaskRunnerExecutesJobAndResultReachesCollector) {
  WorkerRig rig;
  auto worker = rig.make_worker("w0");
  jobs::TaskRunnerConfig runner_config;
  runner_config.exec_slots = 1;
  runner_config.scratch_dir = (rig.dir / "w0-scratch").string();
  auto runner = std::make_shared<jobs::TaskRunner>(*worker, "127.0.0.1",
                                                   rig.host->port(), runner_config);
  ASSERT_TRUE(worker->start().ok());
  ASSERT_TRUE(runner->start().ok());
  worker->active_data().add_callback(runner);

  auto collector = rig.make_worker("coll");
  ASSERT_TRUE(collector->start().ok());

  // The collector token, pinned on the collector node (the demo pattern).
  const api::Expected<core::Data> token = rig.session->create_data("token");
  ASSERT_TRUE(token.ok());
  core::DataAttributes token_attributes;
  token_attributes.replica = 0;
  ASSERT_TRUE(rig.session->schedule(*token, token_attributes).ok());
  std::optional<Status> pinned;
  rig.client_bus->ds_pin(token->uid, "coll", [&](Status s) { pinned = s; });
  ASSERT_TRUE(pinned.has_value() && pinned->ok());
  ASSERT_TRUE(collector->wait_for(token->uid, 15.0));

  const core::Data input = rig.publish("chunk", 64 * 1024, 1, true);
  ASSERT_TRUE(worker->wait_for(input.uid, 15.0));

  jobs::JobSpec spec;
  spec.uid = util::next_auid();
  spec.name = "copy";
  spec.argv = {"/bin/sh", "-c", "cat -- \"$0\" > \"$1\"", "{input}", "{output}"};
  spec.timeout_s = 30;
  spec.inputs = {input.uid};
  spec.collector = token->uid;
  std::optional<api::Expected<util::Auid>> submitted;
  rig.client_bus->job_submit(
      spec, [&](api::Expected<util::Auid> r) { submitted = std::move(r); });
  ASSERT_TRUE(submitted.has_value() && submitted->ok());

  // The runner claims, forks, reports; the job completes data-local.
  jobs::JobStatusInfo status;
  ASSERT_TRUE(wait_until(
      [&] {
        std::optional<api::Expected<jobs::JobStatusInfo>> reply;
        rig.client_bus->job_status(
            spec.uid, [&](api::Expected<jobs::JobStatusInfo> r) { reply = std::move(r); });
        if (!reply.has_value() || !reply->ok()) return false;
        status = **reply;
        return status.complete();
      },
      30.0));
  EXPECT_EQ(status.data_local, 1);
  ASSERT_EQ(status.tasks.size(), 1u);
  const util::Auid result = status.tasks[0].result;
  ASSERT_FALSE(result.is_nil());

  // The result follows the affinity chain to the collector node and is the
  // input byte for byte (the job was `cat`).
  ASSERT_TRUE(collector->wait_for(result, 30.0));
  EXPECT_EQ(core::file_content(collector->replica_path(result)).checksum, input.checksum);
  EXPECT_EQ(runner->stats().tasks_ok, 1u);
  EXPECT_EQ(runner->stats().data_local, 1u);

  runner->stop();
  worker->stop();
  collector->stop();
}

}  // namespace
}  // namespace bitdew
