// Tests for the discrete-event kernel: ordering, cancellation, periodic
// timers and determinism.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace bitdew {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, PastEventsClampToNow) {
  sim::Simulator sim;
  sim.at(5.0, [] {});
  sim.run();
  double fired_at = -1;
  sim.at(1.0, [&] { fired_at = sim.now(); });  // in the past
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  sim::Simulator sim;
  bool fired = false;
  const auto id = sim.after(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  sim::Simulator sim;
  sim.cancel(0);
  sim.cancel(123456);
  sim.run();
  SUCCEED();
}

TEST(Simulator, EventsScheduledDuringExecutionRun) {
  sim::Simulator sim;
  std::vector<double> times;
  sim.after(1.0, [&] {
    times.push_back(sim.now());
    sim.after(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  sim::Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWithEventBudgetStops) {
  sim::Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.at(i, [&] { ++fired; });
  sim.run(4);
  EXPECT_EQ(fired, 4);
}

TEST(Simulator, ExecutedCounterCounts) {
  sim::Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulator, QueuedExcludesCancelled) {
  sim::Simulator sim;
  const auto a = sim.at(1.0, [] {});
  sim.at(2.0, [] {});
  EXPECT_EQ(sim.queued(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.queued(), 1u);
}

TEST(Simulator, RngIsDeterministicPerSeed) {
  sim::Simulator a(77);
  sim::Simulator b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng()(), b.rng()());
}

TEST(PeriodicTimer, FiresRepeatedly) {
  sim::Simulator sim;
  int fires = 0;
  sim::PeriodicTimer timer(sim, 1.0, [&] { ++fires; });
  sim.run_until(5.5);
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, StopsCleanly) {
  sim::Simulator sim;
  int fires = 0;
  sim::PeriodicTimer timer(sim, 1.0, [&] { ++fires; });
  sim.run_until(2.5);
  timer.stop();
  sim.run_until(10.0);
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, CanStopItselfFromCallback) {
  sim::Simulator sim;
  int fires = 0;
  sim::PeriodicTimer timer;
  timer.start(sim, 1.0, [&] {
    if (++fires == 3) timer.stop();
  });
  sim.run_until(10.0);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimer, DestructionCancels) {
  sim::Simulator sim;
  int fires = 0;
  {
    sim::PeriodicTimer timer(sim, 1.0, [&] { ++fires; });
    sim.run_until(1.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(fires, 1);
}

TEST(Simulator, DeterministicEventCountAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    // A random cascade: each event may spawn up to 2 more, bounded depth.
    std::function<void(int)> spawn = [&](int depth) {
      if (depth >= 6) return;
      const auto children = sim.rng().below(3);
      for (std::uint64_t i = 0; i < children; ++i) {
        sim.after(sim.rng().uniform(), [&spawn, depth] { spawn(depth + 1); });
      }
    };
    sim.after(0, [&spawn] { spawn(0); });
    sim.run();
    return sim.executed();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_EQ(run(6), run(6));
}

}  // namespace
}  // namespace bitdew
