// MUST COMPILE with the exact flags the negative cases are rejected under.
// Proves the harness rejects the violations, not the includes or flags:
// correct lock discipline over every wrapper shape the codebase uses —
// LockGuard, UniqueLock + CondVar explicit wait loop, REQUIRES helper,
// EXCLUDES entry points, SharedMutex readers.
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void add(int delta) EXCLUDES(mutex_) {
    const bitdew::util::LockGuard lock(mutex_);
    value_ += delta;
    ready_ = true;
    cv_.notify_all();
  }

  int wait_nonzero() EXCLUDES(mutex_) {
    bitdew::util::UniqueLock lock(mutex_);
    while (!ready_) cv_.wait(lock);
    return read_locked();
  }

 private:
  int read_locked() const REQUIRES(mutex_) { return value_; }

  mutable bitdew::util::Mutex mutex_;
  bitdew::util::CondVar cv_;
  int value_ GUARDED_BY(mutex_) = 0;
  bool ready_ GUARDED_BY(mutex_) = false;
};

class Registry {
 public:
  void put(int v) EXCLUDES(mutex_) {
    const bitdew::util::BasicLockGuard<bitdew::util::SharedMutex> lock(mutex_);
    value_ = v;
  }
  int get() const EXCLUDES(mutex_) {
    const bitdew::util::SharedLockGuard lock(mutex_);
    return value_;
  }

 private:
  mutable bitdew::util::SharedMutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.add(1);
  Registry registry;
  registry.put(counter.wait_nonzero());
  return registry.get() == 1 ? 0 : 1;
}
