// MUST NOT COMPILE under ANY compiler: util::LockGuard is scope-bound
// (deleted copy), so a guard cannot escape its critical section by value.
#include "util/thread_annotations.hpp"

int main() {
  bitdew::util::Mutex mutex;
  const bitdew::util::LockGuard guard(mutex);
  const bitdew::util::LockGuard escaped = guard;  // deleted copy constructor
  (void)escaped;
  return 0;
}
