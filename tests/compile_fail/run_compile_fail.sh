#!/bin/sh
# Compile-fail harness for the thread-annotation wrappers.
#
# Usage: run_compile_fail.sh <mode> <src-include-root> <snippet-dir> <cxx>
#   mode = generic  — compiler-agnostic cases (deleted-copy escape); runs
#                     with the build's own compiler, always executed.
#   mode = tsa      — Clang Thread Safety cases; needs clang++. Exits 77
#                     (ctest SKIP_RETURN_CODE) when no clang++ is found.
#
# Each negative snippet must FAIL to compile and the positive control must
# SUCCEED under the exact same flags, so a broken include path or bad flag
# cannot masquerade as a detected violation.
set -u

MODE=${1:?mode}
SRC=${2:?src include root}
DIR=${3:?snippet dir}
CXX=${4:-c++}

BASE_FLAGS="-std=c++20 -I${SRC} -fsyntax-only"
WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT
fail=0

expect_ok() {
  if ! "$@" >"${WORK}/out" 2>&1; then
    echo "FAIL: positive control did not compile: $*"
    cat "${WORK}/out"
    fail=1
  fi
}

expect_reject() {
  if "$@" >"${WORK}/out" 2>&1; then
    echo "FAIL: negative case compiled cleanly: $*"
    fail=1
  fi
}

case "${MODE}" in
  generic)
    expect_ok     "${CXX}" ${BASE_FLAGS} "${DIR}/positive.cpp"
    expect_reject "${CXX}" ${BASE_FLAGS} "${DIR}/lockguard_copy.cpp"
    ;;
  tsa)
    CLANG=${CLANGXX:-clang++}
    if ! command -v "${CLANG}" >/dev/null 2>&1; then
      echo "SKIP: ${CLANG} not found; thread-safety compile-fail cases need clang"
      exit 77
    fi
    TSA_FLAGS="${BASE_FLAGS} -Werror -Wthread-safety -Wthread-safety-beta"
    expect_ok     "${CLANG}" ${TSA_FLAGS} "${DIR}/positive.cpp"
    expect_reject "${CLANG}" ${TSA_FLAGS} "${DIR}/guarded_by_violation.cpp"
    expect_reject "${CLANG}" ${TSA_FLAGS} "${DIR}/requires_violation.cpp"
    expect_reject "${CLANG}" ${TSA_FLAGS} "${DIR}/lockguard_copy.cpp"
    ;;
  *)
    echo "unknown mode: ${MODE}" >&2
    exit 2
    ;;
esac

if [ "${fail}" -ne 0 ]; then
  exit 1
fi
echo "compile-fail (${MODE}): all cases behaved as expected"
