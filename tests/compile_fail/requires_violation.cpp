// MUST NOT COMPILE under clang -Werror -Wthread-safety: calls a
// REQUIRES(mutex_) helper without the capability — the `_locked()` calling
// convention the migrated classes (LiveRing, ServiceHost, PullCore users)
// rely on.
#include "util/thread_annotations.hpp"

namespace {

class Table {
 public:
  int lookup() EXCLUDES(mutex_) {
    return lookup_locked();  // BAD: capability not held
  }

 private:
  int lookup_locked() REQUIRES(mutex_) { return rows_; }

  bitdew::util::Mutex mutex_;
  int rows_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Table table;
  return table.lookup();
}
