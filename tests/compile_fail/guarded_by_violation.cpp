// MUST NOT COMPILE under clang -Werror -Wthread-safety: reads and writes a
// GUARDED_BY field without holding its mutex. The compile-fail harness
// (tests/compile_fail/run_compile_fail.sh) asserts the compiler rejects
// this translation unit — if it ever compiles, the annotations have gone
// soft and every contract in src/ is decorative.
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void add_unlocked(int delta) { value_ += delta; }   // BAD: no lock held
  int read_unlocked() const { return value_; }        // BAD: no lock held

 private:
  mutable bitdew::util::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.add_unlocked(1);
  return counter.read_unlocked();
}
