// Churn-soak tests: fleet-scale kill/rejoin storms over sync protocol v2.
//
// The simulated half drives 100 reservoir nodes over SimServiceBus through
// a kill storm and a rejoin-with-cache, asserting that the fleet recovers,
// that revived nodes go through the resync handshake (stale-epoch delta ->
// resync order -> full report), and that steady-state sync traffic is
// O(delta) — bytes per beat must not scale with cache size. The live half
// runs testbed::ChurnHarness at a small scale: real sockets, real
// NodeRuntime heartbeat threads, WAL-restored rejoin.
//
// This suite binds real ports and spawns real threads in its live half;
// CMake serializes it against the other live suites (RESOURCE_LOCK).
#include <gtest/gtest.h>

#include "runtime/sim_runtime.hpp"
#include "testbed/churn_harness.hpp"
#include "testbed/topologies.hpp"

namespace bitdew {
namespace {

using runtime::SimNode;
using runtime::SimRuntime;

struct SimSoakRig {
  explicit SimSoakRig(int nodes, std::uint64_t seed = 11) : sim(seed), net(sim) {
    cluster = testbed::make_cluster(net, testbed::ClusterSpec{"soak", nodes + 1});
    runtime = std::make_unique<SimRuntime>(sim, net, cluster.hosts[0]);
    for (int i = 1; i <= nodes; ++i) {
      nodes_.push_back(&runtime->add_node(cluster.hosts[static_cast<std::size_t>(i)]));
    }
  }

  /// Seeds `count` zero-size broadcast datums: arrival is kInstant adoption,
  /// so the soak is pure control plane.
  void seed_broadcasts(int count) {
    SimNode& origin = *nodes_[0];
    for (int i = 0; i < count; ++i) {
      const core::Content content = core::synthetic_content(100 + i, 0);
      const core::Data data =
          origin.bitdew().create_data("soak-" + std::to_string(i), content);
      origin.bitdew().put(data, content);
      core::DataAttributes attributes;
      attributes.replica = core::kReplicaAll;
      attributes.fault_tolerant = true;
      origin.active_data().schedule(data, attributes);
      datums.push_back(data);
    }
  }

  /// Live nodes holding every seeded datum (a killed node keeps its
  /// in-memory cache, but a dead reservoir doesn't count as a holder).
  int nodes_holding_all() const {
    int count = 0;
    for (const SimNode* node : nodes_) {
      if (!net.alive(node->host())) continue;
      bool all = true;
      for (const core::Data& data : datums) all = all && node->has(data.uid);
      count += all ? 1 : 0;
    }
    return count;
  }

  void run_for(double seconds) { sim.run_until(sim.now() + seconds); }

  sim::Simulator sim;
  net::Network net;
  testbed::Cluster cluster;
  std::unique_ptr<SimRuntime> runtime;
  std::vector<SimNode*> nodes_;
  std::vector<core::Data> datums;
};

TEST(SoakSim, KillRejoinStormRecoversThroughResync) {
  constexpr int kNodes = 100;
  constexpr int kDatums = 8;
  constexpr int kVictims = 30;
  SimSoakRig rig(kNodes);
  rig.seed_broadcasts(kDatums);
  rig.run_for(20);
  ASSERT_EQ(rig.nodes_holding_all(), kNodes);

  // Steady state: every beat is an empty delta; no full syncs happen.
  const services::SchedulerStats stats_before = rig.runtime->container().ds().stats();
  rig.run_for(10);
  const services::SchedulerStats stats_mid = rig.runtime->container().ds().stats();
  EXPECT_EQ(stats_mid.full_syncs, stats_before.full_syncs);
  EXPECT_GT(stats_mid.delta_syncs, stats_before.delta_syncs);

  // Kill storm: 30 nodes die abruptly; the failure timeout declares them
  // dead and zeroes their epochs.
  for (int i = 0; i < kVictims; ++i) {
    rig.runtime->kill_node(rig.nodes_[static_cast<std::size_t>(i)]->host());
  }
  rig.run_for(8);  // > 3x heartbeat + detector period
  EXPECT_EQ(rig.nodes_holding_all(), kNodes - kVictims);

  // Rejoin-with-cache: the pull state survived, so each revived node's
  // first beat is a stale-epoch delta answered by a resync order.
  const std::uint64_t resyncs_before = rig.runtime->container().ds().stats().resyncs;
  for (int i = 0; i < kVictims; ++i) {
    rig.runtime->revive_node(rig.nodes_[static_cast<std::size_t>(i)]->host());
  }
  rig.run_for(15);
  EXPECT_EQ(rig.nodes_holding_all(), kNodes);
  const auto& stats_after = rig.runtime->container().ds().stats();
  EXPECT_GE(stats_after.resyncs, resyncs_before + kVictims);
  // The resync full reports re-granted ownership: every broadcast datum is
  // owned by the whole fleet again.
  for (const core::Data& data : rig.datums) {
    EXPECT_EQ(rig.runtime->container().ds().owners(data.uid).size(),
              static_cast<std::size_t>(kNodes));
  }
}

TEST(SoakSim, SteadyStateBytesPerBeatIndependentOfCacheSize) {
  // Two fleets, identical except one caches 8x the datums. Under v1
  // full-report syncs the bigger cache costs ~48 bytes per extra datum per
  // beat; under v2 empty deltas both should pay only the fixed envelope.
  auto steady_bytes_per_beat = [](int datums) {
    SimSoakRig rig(40);
    rig.seed_broadcasts(datums);
    rig.run_for(20);
    EXPECT_EQ(rig.nodes_holding_all(), 40);
    const std::int64_t bytes_before = rig.net.delivered_bytes();
    const std::uint64_t rpcs_before = rig.runtime->total_rpcs();
    rig.run_for(30);
    const double beats = static_cast<double>(rig.runtime->total_rpcs() - rpcs_before);
    EXPECT_GT(beats, 0);
    return static_cast<double>(rig.net.delivered_bytes() - bytes_before) / beats;
  };
  const double small_cache = steady_bytes_per_beat(4);
  const double large_cache = steady_bytes_per_beat(32);
  // 28 extra cached datums would cost ~1.3 KB/beat if syncs re-sent the
  // whole cache list; O(delta) means the difference stays in the noise.
  EXPECT_NEAR(large_cache, small_cache, 100.0);
}

TEST(SoakLive, SmallFleetChurnsAndRecovers) {
  testbed::ChurnConfig config;
  config.nodes = 12;
  config.datums = 6;
  config.heartbeat_period_s = 0.15;
  config.steady_s = 1.5;
  config.kill_fraction = 0.25;  // 3 victims
  config.join_timeout_s = 60;
  config.recovery_timeout_s = 60;
  testbed::ChurnHarness harness(config);
  ASSERT_TRUE(harness.start().ok());
  const testbed::SoakReport report = harness.run();

  EXPECT_TRUE(report.join_complete);
  EXPECT_TRUE(report.recovered);
  // Rejoined under the same cache dir: every victim re-adopted its replicas
  // from the WAL manifest instead of re-downloading.
  EXPECT_EQ(report.restored_replicas, 3u * 6u);

  // Steady state is pure empty deltas, and a delta beat's encoded request
  // must not scale with the 6-datum cache (version + host + epoch + flags +
  // three empty lists + endpoint stays well under 128 bytes).
  const testbed::PhaseReport* steady = report.phase("steady");
  ASSERT_NE(steady, nullptr);
  EXPECT_GT(steady->beats_ok, 0u);
  EXPECT_EQ(steady->full_beats, 0u);
  EXPECT_EQ(steady->beats_failed, 0u);
  EXPECT_LT(steady->mean_delta_request_bytes, 128.0);

  // The rejoin phase carried the victims' full reports.
  const testbed::PhaseReport* rejoin = report.phase("rejoin");
  ASSERT_NE(rejoin, nullptr);
  EXPECT_GE(rejoin->full_beats, 3u);
  EXPECT_GT(report.scheduler_delta_syncs, report.scheduler_full_syncs);
}

}  // namespace
}  // namespace bitdew
