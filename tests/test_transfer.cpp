// Transfer-protocol tests: FTP slots/handshake/resume, HTTP, the BitTorrent
// swarm (completion, scaling shape, piece accounting, crash handling), the
// flaky decorator, the blocking local-file OOB implementation, and the real
// data plane — transfer::TcpTransfer's chunked, resumable, MD5-verified
// put/get through the bus's dr_put_*/dr_get_chunk endpoints (exercised here
// over DirectServiceBus; tests/test_transport.cpp drives the same engine
// over live sockets).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "api/direct_service_bus.hpp"
#include "api/session.hpp"
#include "rpc/chunk_server.hpp"
#include "transfer/bittorrent.hpp"
#include "transfer/flaky.hpp"
#include "transfer/peer.hpp"
#include "transfer/tcp.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "transfer/ftp.hpp"
#include "transfer/http.hpp"
#include "transfer/local_file.hpp"

namespace bitdew {
namespace {

using transfer::BtConfig;
using transfer::BtProtocol;
using transfer::FtpConfig;
using transfer::FtpProtocol;
using transfer::HttpProtocol;
using transfer::TransferJob;
using transfer::TransferOutcome;

struct Rig {
  explicit Rig(int clients, double server_up = 125e6, double client_down = 125e6,
               std::uint64_t seed = 7)
      : sim(seed), net(sim) {
    const auto zone = net.add_zone("lan");
    net::HostSpec s;
    s.name = "server";
    s.uplink_Bps = server_up;
    s.downlink_Bps = server_up;
    s.lan_latency_s = 100e-6;
    server = net.add_host(zone, s);
    for (int i = 0; i < clients; ++i) {
      net::HostSpec c;
      c.name = "client" + std::to_string(i);
      c.uplink_Bps = client_down;
      c.downlink_Bps = client_down;
      c.lan_latency_s = 100e-6;
      this->clients.push_back(net.add_host(zone, c));
    }
  }

  core::Data data(std::int64_t size) {
    core::Data d;
    d.uid = util::next_auid();
    d.name = "payload";
    d.size = size;
    d.checksum = core::synthetic_content(d.uid.lo, size).checksum;
    return d;
  }

  TransferJob job(const core::Data& d, net::HostId dst) {
    TransferJob j;
    j.data = d;
    j.source = server;
    j.destination = dst;
    return j;
  }

  sim::Simulator sim;
  net::Network net;
  net::HostId server = 0;
  std::vector<net::HostId> clients;
};

TEST(Ftp, SingleTransferCompletesWithChecksum) {
  Rig rig(1);
  FtpProtocol ftp(rig.sim, rig.net);
  const auto data = rig.data(10 * util::kMB);
  TransferOutcome outcome;
  ftp.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.bytes_transferred, data.size);
  EXPECT_EQ(outcome.checksum, data.checksum);
  // 10 MB at 1 Gbit/s ≈ 0.08 s plus control latency.
  EXPECT_GT(outcome.elapsed(), 0.07);
  EXPECT_LT(outcome.elapsed(), 0.2);
}

TEST(Ftp, ServerSlotsQueueExcessClients) {
  Rig rig(4);
  FtpConfig config;
  config.server_slots = 1;  // strictly serialize
  FtpProtocol ftp(rig.sim, rig.net, config);
  const auto data = rig.data(10 * util::kMB);
  std::vector<double> finish_times;
  for (const auto client : rig.clients) {
    ftp.start(rig.job(data, client),
              [&](const TransferOutcome& o) { finish_times.push_back(o.finished_at); });
  }
  rig.sim.run();
  ASSERT_EQ(finish_times.size(), 4u);
  std::sort(finish_times.begin(), finish_times.end());
  // Serialized: roughly equally spaced completions, not simultaneous.
  EXPECT_GT(finish_times[3], finish_times[0] * 2.5);
}

TEST(Ftp, CompletionScalesLinearlyWithClients) {
  // The Fig. 3a baseline shape: N clients pulling the same file from one
  // server take ~N times as long as one client.
  auto span = [](int n) {
    Rig rig(n);
    FtpProtocol ftp(rig.sim, rig.net);
    const auto data = rig.data(20 * util::kMB);
    double last = 0;
    int done = 0;
    for (const auto client : rig.clients) {
      ftp.start(rig.job(data, client), [&](const TransferOutcome& o) {
        EXPECT_TRUE(o.ok);
        last = std::max(last, o.finished_at);
        ++done;
      });
    }
    rig.sim.run();
    EXPECT_EQ(done, n);
    return last;
  };
  const double t1 = span(1);
  const double t8 = span(8);
  EXPECT_NEAR(t8 / t1, 8.0, 1.0);
}

TEST(Ftp, ResumeRestartsFromOffset) {
  Rig rig(1);
  FtpProtocol ftp(rig.sim, rig.net);
  EXPECT_TRUE(ftp.supports_resume());
  const auto data = rig.data(10 * util::kMB);
  auto job = rig.job(data, rig.clients[0]);
  job.offset = 9 * util::kMB;  // only the last MB remains
  TransferOutcome outcome;
  ftp.start(job, [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.bytes_requested, 1 * util::kMB);
  EXPECT_EQ(outcome.bytes_transferred, 1 * util::kMB);
}

TEST(Ftp, DeadServerFailsTransfer) {
  Rig rig(1);
  FtpProtocol ftp(rig.sim, rig.net);
  rig.net.kill_host(rig.server);
  const auto data = rig.data(util::kMB);
  TransferOutcome outcome;
  outcome.ok = true;
  ftp.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.error.empty());
}

TEST(Ftp, ReceiverCrashMidTransferFails) {
  Rig rig(1);
  FtpProtocol ftp(rig.sim, rig.net);
  const auto data = rig.data(100 * util::kMB);
  TransferOutcome outcome;
  bool called = false;
  ftp.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) {
    outcome = o;
    called = true;
  });
  rig.sim.run_until(0.2);
  rig.net.kill_host(rig.clients[0]);
  rig.sim.run();
  ASSERT_TRUE(called);
  EXPECT_FALSE(outcome.ok);
  EXPECT_GT(outcome.bytes_transferred, 0);  // partial credit for resume
  EXPECT_LT(outcome.bytes_transferred, data.size);
}

TEST(Http, TransfersAndResumes) {
  Rig rig(1);
  HttpProtocol http(rig.sim, rig.net);
  const auto data = rig.data(5 * util::kMB);
  TransferOutcome outcome;
  http.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.bytes_transferred, data.size);

  auto resumed = rig.job(data, rig.clients[0]);
  resumed.offset = 4 * util::kMB;
  http.start(resumed, [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.bytes_requested, util::kMB);
}

TEST(Http, HasLowerSetupLatencyThanFtp) {
  // HTTP: 1 request round-trip; FTP: login handshake + slot. For a tiny
  // file the HTTP transfer must finish sooner.
  Rig rig(2);
  HttpProtocol http(rig.sim, rig.net);
  FtpProtocol ftp(rig.sim, rig.net);
  const auto data = rig.data(10 * util::kKB);
  double http_done = 0;
  double ftp_done = 0;
  http.start(rig.job(data, rig.clients[0]),
             [&](const TransferOutcome& o) { http_done = o.finished_at; });
  ftp.start(rig.job(data, rig.clients[1]),
            [&](const TransferOutcome& o) { ftp_done = o.finished_at; });
  rig.sim.run();
  EXPECT_LT(http_done, ftp_done);
}

// --- BitTorrent ---------------------------------------------------------------

TEST(Bt, SinglePeerDownloadsAllPieces) {
  Rig rig(1);
  BtProtocol bt(rig.sim, rig.net);
  const auto data = rig.data(10 * util::kMB);
  TransferOutcome outcome;
  bt.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.bytes_transferred, data.size);
  ASSERT_NE(bt.swarm(data.uid), nullptr);
  EXPECT_EQ(bt.swarm(data.uid)->piece_count(), 10);
  EXPECT_TRUE(bt.swarm(data.uid)->peer_complete(rig.clients[0]));
}

TEST(Bt, SwarmDeliversToManyPeers) {
  Rig rig(20);
  BtProtocol bt(rig.sim, rig.net);
  const auto data = rig.data(20 * util::kMB);
  int done = 0;
  for (const auto client : rig.clients) {
    bt.start(rig.job(data, client), [&](const TransferOutcome& o) {
      EXPECT_TRUE(o.ok);
      ++done;
    });
  }
  rig.sim.run();
  EXPECT_EQ(done, 20);
  // Peers upload to each other: total payload moved exceeds what the seeder
  // alone could have pushed if everything came from it serially.
  EXPECT_EQ(bt.swarm(data.uid)->payload_bytes(), 20 * data.size);
}

TEST(Bt, ScalesFlatterThanFtp) {
  // The central claim of Fig. 3a: going from few to many nodes barely moves
  // BT completion time while FTP grows linearly.
  auto bt_span = [](int n) {
    Rig rig(n, 125e6, 125e6, 11);
    BtProtocol bt(rig.sim, rig.net);
    const auto data = rig.data(50 * util::kMB);
    double last = 0;
    for (const auto client : rig.clients) {
      bt.start(rig.job(data, client),
               [&](const TransferOutcome& o) { last = std::max(last, o.finished_at); });
    }
    rig.sim.run();
    return last;
  };
  const double t4 = bt_span(4);
  const double t32 = bt_span(32);
  // 8x the nodes should cost well under 8x the time (FTP's ratio would be
  // ~8; the paper's BT curve is near-flat, ours grows only with the ramp
  // phase where pieces spread).
  EXPECT_LT(t32 / t4, 4.5);
}

TEST(Bt, ZeroByteDataCompletes) {
  Rig rig(1);
  BtProtocol bt(rig.sim, rig.net);
  auto data = rig.data(0);
  TransferOutcome outcome;
  bt.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_TRUE(outcome.ok);
}

TEST(Bt, RetriedTransferOnCompletePeerSucceedsImmediately) {
  Rig rig(1);
  BtProtocol bt(rig.sim, rig.net);
  const auto data = rig.data(util::kMB);
  bt.start(rig.job(data, rig.clients[0]), [](const TransferOutcome&) {});
  rig.sim.run();
  TransferOutcome second;
  bt.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) { second = o; });
  rig.sim.run();
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(second.bytes_transferred, data.size);
}

TEST(Bt, PeerCrashFailsItsDownloadAndOthersFinish) {
  Rig rig(6);
  BtProtocol bt(rig.sim, rig.net);
  const auto data = rig.data(30 * util::kMB);
  int ok_count = 0;
  int fail_count = 0;
  for (const auto client : rig.clients) {
    bt.start(rig.job(data, client), [&](const TransferOutcome& o) {
      if (o.ok) {
        ++ok_count;
      } else {
        ++fail_count;
      }
    });
  }
  rig.sim.run_until(0.05);
  rig.net.kill_host(rig.clients[2]);
  bt.on_host_failed(rig.clients[2]);
  rig.sim.run();
  EXPECT_EQ(fail_count, 1);
  EXPECT_EQ(ok_count, 5);
}

TEST(Bt, PieceSizeConfigRoundsUp) {
  Rig rig(1);
  BtConfig config;
  config.piece_bytes = 3 * util::kMB;
  BtProtocol bt(rig.sim, rig.net, config);
  const auto data = rig.data(10 * util::kMB);  // 3+3+3+1
  bt.start(rig.job(data, rig.clients[0]), [](const TransferOutcome&) {});
  rig.sim.run();
  EXPECT_EQ(bt.swarm(data.uid)->piece_count(), 4);
  EXPECT_EQ(bt.swarm(data.uid)->payload_bytes(), data.size);
}

// --- flaky decorator ---------------------------------------------------------

TEST(Flaky, InjectsFailuresAtConfiguredRate) {
  Rig rig(1);
  transfer::FlakyConfig flaky_config;
  flaky_config.fail_probability = 1.0;
  transfer::FlakyProtocol flaky(std::make_unique<HttpProtocol>(rig.sim, rig.net), rig.sim,
                                flaky_config);
  const auto data = rig.data(util::kMB);
  TransferOutcome outcome;
  outcome.ok = true;
  flaky.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(flaky.name(), "http");
}

TEST(Flaky, CorruptionBreaksChecksum) {
  Rig rig(1);
  transfer::FlakyConfig flaky_config;
  flaky_config.corrupt_probability = 1.0;
  transfer::FlakyProtocol flaky(std::make_unique<HttpProtocol>(rig.sim, rig.net), rig.sim,
                                flaky_config);
  const auto data = rig.data(util::kMB);
  TransferOutcome outcome;
  flaky.start(rig.job(data, rig.clients[0]), [&](const TransferOutcome& o) { outcome = o; });
  rig.sim.run();
  EXPECT_TRUE(outcome.ok);
  EXPECT_NE(outcome.checksum, data.checksum);  // receiver-side check will reject
}

// --- local-file OOB (blocking, real filesystem) -------------------------------

class LocalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("bitdew-oob-" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "src");
    std::ofstream(root_ / "src" / "input.bin") << "out-of-band payload";
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
};

TEST_F(LocalFileTest, SendThenReceiveRoundTrips) {
  transfer::LocalFileTransfer oob(root_ / "remote");
  transfer::OobEndpoint endpoint;
  endpoint.host = "hostA";
  endpoint.path = "slot/data.bin";
  endpoint.local_path = (root_ / "src" / "input.bin").string();

  oob.connect(endpoint);
  oob.sender_send(endpoint);
  EXPECT_TRUE(oob.probe());
  oob.sender_receive(endpoint);  // checksum-verified ack

  transfer::OobEndpoint fetch = endpoint;
  fetch.local_path = (root_ / "src" / "copy.bin").string();
  oob.receiver_send(fetch);
  EXPECT_FALSE(oob.probe());
  oob.receiver_receive(fetch);
  EXPECT_TRUE(oob.probe());
  oob.disconnect();

  EXPECT_EQ(core::file_content(fetch.local_path).checksum,
            core::file_content(endpoint.local_path).checksum);
}

TEST_F(LocalFileTest, ErrorsOnMissingRemoteAndWhenDisconnected) {
  transfer::LocalFileTransfer oob(root_ / "remote");
  transfer::OobEndpoint endpoint;
  endpoint.host = "hostA";
  endpoint.path = "missing.bin";
  endpoint.local_path = (root_ / "src" / "input.bin").string();

  EXPECT_THROW(oob.sender_send(endpoint), transfer::TransferError);  // not connected
  oob.connect(endpoint);
  EXPECT_THROW(oob.receiver_send(endpoint), transfer::TransferError);  // missing remote
}

// --- TcpTransfer: the real chunked data plane ----------------------------------

using api::Errc;
using api::Status;

class TcpTransferTest : public ::testing::Test {
 protected:
  TcpTransferTest() : container_("dr", clock_), bus_(container_, ddc_) {}

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bitdew-tcp-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string make_payload(std::size_t size) {
    std::string payload(size, '\0');
    for (std::size_t i = 0; i < size; ++i) payload[i] = static_cast<char>((i * 131 + 7) & 0xff);
    return payload;
  }

  std::string write_file(const std::string& name, const std::string& bytes) {
    const std::string path = (dir_ / name).string();
    std::ofstream(path, std::ios::binary) << bytes;
    return path;
  }

  std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  /// A registered data slot whose descriptor matches the file at `path`.
  core::Data register_data(const std::string& name, const std::string& path) {
    core::Data data;
    data.uid = util::next_auid();
    data.name = name;
    const core::Content content = core::file_content(path);
    data.size = content.size;
    data.checksum = content.checksum;
    std::optional<Status> registered;
    bus_.dc_register(data, [&](Status s) { registered = s; });
    EXPECT_TRUE(registered.has_value() && registered->ok());
    return data;
  }

  transfer::TcpTransfer engine(std::int64_t chunk_bytes) {
    return transfer::TcpTransfer(bus_, transfer::TcpConfig{chunk_bytes, 3, true});
  }

  util::ManualClock clock_;
  services::ServiceContainer container_;
  dht::LocalDht ddc_;
  api::DirectServiceBus bus_;
  std::filesystem::path dir_;
};

TEST_F(TcpTransferTest, MultiChunkRoundTripIsByteIdentical) {
  const std::string payload = make_payload(10000);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("payload", in_path);

  auto tcp = engine(1024);
  const Status put = tcp.put_file(data, in_path);
  ASSERT_TRUE(put.ok()) << put.error().to_string();
  EXPECT_EQ(tcp.stats().chunks_sent, 10);
  EXPECT_EQ(tcp.stats().bytes_sent, 10000);

  const std::string out_path = (dir_ / "out.bin").string();
  const Status got = tcp.get_file(data, out_path);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(slurp(out_path), payload);
  EXPECT_EQ(tcp.stats().chunks_received, 10);
  EXPECT_FALSE(std::filesystem::exists(out_path + ".part"));

  // The put published a "tcp" locator, and both transfers ran through DT
  // tickets the control plane can observe.
  std::optional<api::Expected<std::vector<core::Locator>>> locators;
  bus_.dc_locators(data.uid, [&](auto reply) { locators = std::move(reply); });
  ASSERT_TRUE(locators.has_value() && locators->ok());
  ASSERT_EQ((*locators)->size(), 1u);
  EXPECT_EQ((**locators)[0].protocol, transfer::kTcpProtocol);
  EXPECT_EQ(container_.dt().stats().completed, 2u);
}

TEST_F(TcpTransferTest, ZeroByteFileRoundTrips) {
  const std::string in_path = write_file("empty.bin", "");
  const core::Data data = register_data("empty", in_path);

  auto tcp = engine(4096);
  ASSERT_TRUE(tcp.put_file(data, in_path).ok());
  EXPECT_EQ(tcp.stats().chunks_sent, 0);

  const std::string out_path = (dir_ / "empty-out.bin").string();
  ASSERT_TRUE(tcp.get_file(data, out_path).ok());
  EXPECT_TRUE(std::filesystem::exists(out_path));
  EXPECT_EQ(std::filesystem::file_size(out_path), 0u);
}

TEST_F(TcpTransferTest, MidStreamCorruptionFailsCommitWithChecksumMismatch) {
  const std::string payload = make_payload(8192);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("payload", in_path);

  // Stage the upload by hand, flipping one byte in the second chunk.
  std::optional<api::Expected<std::int64_t>> offset;
  bus_.dr_put_start(data, [&](auto reply) { offset = std::move(reply); });
  ASSERT_TRUE(offset.has_value() && offset->ok());
  std::string corrupted = payload;
  corrupted[5000] = static_cast<char>(corrupted[5000] ^ 0x40);
  for (std::int64_t at = 0; at < 8192; at += 2048) {
    std::optional<Status> sent;
    bus_.dr_put_chunk(data.uid, at, corrupted.substr(static_cast<std::size_t>(at), 2048),
                      [&](Status s) { sent = s; });
    ASSERT_TRUE(sent.has_value() && sent->ok());
  }
  std::optional<api::Expected<core::Locator>> committed;
  bus_.dr_put_commit(data.uid, "tcp", [&](auto reply) { committed = std::move(reply); });
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(committed->code(), Errc::kChecksumMismatch);

  // The poisoned stage was discarded: a clean engine put starts from zero
  // and succeeds.
  auto tcp = engine(2048);
  const Status put = tcp.put_file(data, in_path);
  ASSERT_TRUE(put.ok()) << put.error().to_string();
  EXPECT_EQ(tcp.stats().bytes_sent, 8192);
  EXPECT_EQ(tcp.stats().resumes, 0);
}

TEST_F(TcpTransferTest, OversizedEmptyAndMisalignedChunksAreRejectedTyped) {
  const std::string payload = make_payload(4096);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("payload", in_path);

  std::optional<api::Expected<std::int64_t>> started;
  bus_.dr_put_start(data, [&](auto reply) { started = std::move(reply); });
  ASSERT_TRUE(started.has_value() && started->ok());

  auto send = [&](std::int64_t at, const std::string& bytes) {
    std::optional<Status> sent;
    bus_.dr_put_chunk(data.uid, at, bytes, [&](Status s) { sent = s; });
    return *sent;
  };

  // A chunk above the per-chunk cap is refused before any allocation grows.
  EXPECT_EQ(send(0, std::string(static_cast<std::size_t>(services::kMaxChunkBytes) + 1, 'x'))
                .code(),
            Errc::kInvalidArgument);
  // An empty chunk is meaningless.
  EXPECT_EQ(send(0, "").code(), Errc::kInvalidArgument);
  // A chunk overrunning the declared content size is refused.
  EXPECT_EQ(send(0, std::string(5000, 'x')).code(), Errc::kInvalidArgument);
  // A misaligned offset is a typed desync, not silent corruption.
  EXPECT_EQ(send(1024, payload.substr(1024, 1024)).code(), Errc::kRejected);
  // Committing an incomplete stage is refused.
  std::optional<api::Expected<core::Locator>> committed;
  bus_.dr_put_commit(data.uid, "tcp", [&](auto reply) { committed = std::move(reply); });
  EXPECT_EQ(committed->code(), Errc::kRejected);
}

TEST_F(TcpTransferTest, ChunkWithoutStageIsNotFound) {
  const std::string in_path = write_file("in.bin", make_payload(1024));
  const core::Data data = register_data("payload", in_path);
  std::optional<Status> sent;
  bus_.dr_put_chunk(data.uid, 0, "x", [&](Status s) { sent = s; });
  EXPECT_EQ(sent->code(), Errc::kNotFound);
}

TEST_F(TcpTransferTest, PutResumesFromStagedOffset) {
  const std::string payload = make_payload(16384);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("payload", in_path);

  // A previous, interrupted sender staged the first half.
  std::optional<api::Expected<std::int64_t>> started;
  bus_.dr_put_start(data, [&](auto reply) { started = std::move(reply); });
  ASSERT_TRUE(started.has_value() && started->ok());
  for (std::int64_t at = 0; at < 8192; at += 4096) {
    std::optional<Status> sent;
    bus_.dr_put_chunk(data.uid, at, payload.substr(static_cast<std::size_t>(at), 4096),
                      [&](Status s) { sent = s; });
    ASSERT_TRUE(sent->ok());
  }

  auto tcp = engine(4096);
  const Status put = tcp.put_file(data, in_path);
  ASSERT_TRUE(put.ok()) << put.error().to_string();
  EXPECT_EQ(tcp.stats().resumes, 1);
  EXPECT_EQ(tcp.stats().bytes_sent, 16384 - 8192);  // only the missing half moved

  const std::string out_path = (dir_ / "out.bin").string();
  ASSERT_TRUE(tcp.get_file(data, out_path).ok());
  EXPECT_EQ(slurp(out_path), payload);
}

TEST_F(TcpTransferTest, GetResumesFromPartFile) {
  const std::string payload = make_payload(12288);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("payload", in_path);
  auto tcp = engine(4096);
  ASSERT_TRUE(tcp.put_file(data, in_path).ok());

  // A previous, interrupted download left the first third on disk.
  const std::string out_path = (dir_ / "out.bin").string();
  write_file("out.bin.part", payload.substr(0, 4096));

  const Status got = tcp.get_file(data, out_path);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(tcp.stats().resumes, 1);
  EXPECT_EQ(tcp.stats().bytes_received, 12288 - 4096);
  EXPECT_EQ(slurp(out_path), payload);
}

TEST_F(TcpTransferTest, GetOfMetadataOnlyDatumFailsNotFound) {
  // A datum put through the descriptor-only path (simulated content) has no
  // real bytes to serve.
  const std::string in_path = write_file("in.bin", make_payload(2048));
  const core::Data data = register_data("synthetic", in_path);
  std::optional<api::Expected<core::Locator>> put;
  bus_.dr_put(data, core::Content{data.size, data.checksum}, "ftp",
              [&](auto reply) { put = std::move(reply); });
  ASSERT_TRUE(put.has_value() && put->ok());

  auto tcp = engine(1024);
  const Status got = tcp.get_file(data, (dir_ / "out.bin").string());
  EXPECT_EQ(got.code(), Errc::kNotFound);
}

TEST_F(TcpTransferTest, SessionPutFileRefusesChangedContentUnderSameName) {
  api::BitDew bitdew(bus_, "client");
  api::ActiveData active_data(bus_, "client");
  api::Session session(bitdew, active_data);
  session.set_chunk_bytes(1024);

  const std::string path = write_file("f.bin", make_payload(3000));
  const auto first = session.put_file("dataset", path);
  ASSERT_TRUE(first.ok()) << first.error().to_string();

  // Identical content re-put reuses the registered slot (resume semantics).
  const auto again = session.put_file("dataset", path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->uid, first->uid);

  // Changed content under the same name must fail typed, not register a
  // second datum that name lookups would shadow.
  const std::string changed = write_file("f.bin", make_payload(4000));
  const auto conflict = session.put_file("dataset", changed);
  EXPECT_EQ(conflict.code(), Errc::kDuplicate);

  // Deleting the datum frees the name.
  ASSERT_TRUE(session.remove(*first).ok());
  const auto replaced = session.put_file("dataset", changed);
  ASSERT_TRUE(replaced.ok()) << replaced.error().to_string();
  EXPECT_NE(replaced->uid, first->uid);
}

TEST_F(TcpTransferTest, PutOfFileThatDiffersFromDescriptorFailsTyped) {
  const std::string in_path = write_file("in.bin", make_payload(4096));
  const core::Data data = register_data("payload", in_path);
  const std::string other_path = write_file("other.bin", make_payload(5000));

  auto tcp = engine(1024);
  EXPECT_EQ(tcp.put_file(data, other_path).code(), Errc::kInvalidArgument);
  EXPECT_EQ(tcp.put_file(data, (dir_ / "missing.bin").string()).code(),
            Errc::kInvalidArgument);
}

// --- PeerTransfer: the multi-source peer data plane ---------------------------
// Real rpc::ChunkServers on loopback sockets play the serving workers; the
// DirectServiceBus container is the central repository fallback.

/// One serving peer: a live chunk server answering from an in-memory
/// payload. `fail_after` >= 0 makes every read past that count fail typed —
/// the deterministic stand-in for a worker dying mid-stripe.
class ServingPeer {
 public:
  explicit ServingPeer(std::string payload, int fail_after = -1)
      : payload_(std::move(payload)),
        fail_after_(fail_after),
        server_(
            [this](const util::Auid&, std::int64_t offset,
                   std::int64_t max_bytes) -> api::Expected<rpc::ChunkRef> {
              if (fail_after_ >= 0 && served_.fetch_add(1) >= fail_after_) {
                return api::Error{api::Errc::kUnavailable, "peer", "synthetic peer death"};
              }
              if (offset >= static_cast<std::int64_t>(payload_.size())) {
                return rpc::ChunkRef(std::string{});
              }
              return rpc::ChunkRef(payload_.substr(static_cast<std::size_t>(offset),
                                                   static_cast<std::size_t>(max_bytes)));
            },
            rpc::ChunkServerConfig{0, true, 5, 5}) {
    const Status started = server_.start();
    EXPECT_TRUE(started.ok()) << started.error().to_string();
  }

  core::Locator locator(const util::Auid& uid, const std::string& name) const {
    core::Locator out;
    out.data_uid = uid;
    out.protocol = transfer::kPeerProtocol;
    out.host = "127.0.0.1:" + std::to_string(server_.port());
    out.path = name;
    return out;
  }

  std::uint64_t chunks_served() const { return server_.chunks_served(); }
  void stop() { server_.stop(); }

 private:
  std::string payload_;
  int fail_after_;
  std::atomic<int> served_{0};
  rpc::ChunkServer server_;
};

class PeerTransferTest : public TcpTransferTest {
 protected:
  transfer::PeerTransfer peer_engine(std::int64_t chunk_bytes) {
    transfer::PeerConfig config;
    config.chunk_bytes = chunk_bytes;
    config.max_attempts = 3;
    config.local_name = "w-under-test";
    config.peer_connect_timeout_s = 2.0;
    config.peer_call_deadline_s = 5.0;
    return transfer::PeerTransfer(bus_, config);
  }
};

TEST_F(PeerTransferTest, StripesAcrossPeersWithZeroRepositoryEgress) {
  const std::string payload = make_payload(8000);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("swarmed", in_path);
  ServingPeer alice(payload);
  ServingPeer bob(payload);

  auto p2p = peer_engine(1000);  // 8 chunks over 2 peers
  const std::string out_path = (dir_ / "out.bin").string();
  const Status got = p2p.get_file(data, out_path,
                                  {alice.locator(data.uid, "alice"), bob.locator(data.uid, "bob")});
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(slurp(out_path), payload);

  // Every byte came from the swarm: the striping hit BOTH peers and the
  // central repository shipped nothing.
  EXPECT_EQ(p2p.stats().chunks_from_peers, 8);
  EXPECT_EQ(p2p.stats().bytes_from_peers, 8000);
  EXPECT_EQ(p2p.stats().chunks_from_repository, 0);
  EXPECT_GT(alice.chunks_served(), 0u);
  EXPECT_GT(bob.chunks_served(), 0u);
  EXPECT_EQ(container_.dr().stats().chunk_reads, 0u);
  // The DT service observed the out-of-band transfer as usual.
  EXPECT_EQ(container_.dt().stats().completed, 1u);
}

TEST_F(PeerTransferTest, PeerDeathMidStripeFallsBackAndVerifies) {
  const std::string payload = make_payload(12000);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("fragile", in_path);
  // Seed the repository (the fallback source) through the normal data plane.
  auto tcp = engine(1000);
  ASSERT_TRUE(tcp.put_file(data, in_path).ok());

  ServingPeer dying(payload, /*fail_after=*/3);  // dies mid-stripe
  auto p2p = peer_engine(1000);
  const std::string out_path = (dir_ / "out.bin").string();
  const Status got = p2p.get_file(data, out_path, {dying.locator(data.uid, "dying")});
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(slurp(out_path), payload);

  // Some chunks arrived before the death, the rest from the repository; the
  // dead peer left the stripe and the final MD5 still verified.
  EXPECT_GT(p2p.stats().chunks_from_peers, 0);
  EXPECT_GT(p2p.stats().chunks_from_repository, 0);
  EXPECT_GE(p2p.stats().peers_dropped, 1);
  EXPECT_FALSE(std::filesystem::exists(out_path + ".part"));
}

TEST_F(PeerTransferTest, NoUsableSourcesMeansRepositoryOnly) {
  const std::string payload = make_payload(5000);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("lonely", in_path);
  auto tcp = engine(1000);
  ASSERT_TRUE(tcp.put_file(data, in_path).ok());

  // A malformed locator and a refused endpoint: both must be survivable.
  core::Locator garbage;
  garbage.data_uid = data.uid;
  garbage.protocol = transfer::kPeerProtocol;
  garbage.host = "not-an-endpoint";
  core::Locator refused;
  refused.data_uid = data.uid;
  refused.protocol = transfer::kPeerProtocol;
  refused.host = "127.0.0.1:1";  // nothing listens there

  auto p2p = peer_engine(1000);
  const std::string out_path = (dir_ / "out.bin").string();
  const Status got = p2p.get_file(data, out_path, {garbage, refused});
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(slurp(out_path), payload);
  EXPECT_EQ(p2p.stats().chunks_from_peers, 0);
  EXPECT_EQ(p2p.stats().chunks_from_repository, 5);
}

TEST_F(PeerTransferTest, CorruptPeerBytesNeverPoisonTheCache) {
  const std::string payload = make_payload(4000);
  const std::string in_path = write_file("in.bin", payload);
  const core::Data data = register_data("poisoned", in_path);
  std::string corrupt = payload;
  corrupt[1500] ^= 0x5a;
  ServingPeer liar(corrupt);

  auto p2p = peer_engine(1000);
  const std::string out_path = (dir_ / "out.bin").string();
  const Status got = p2p.get_file(data, out_path, {liar.locator(data.uid, "liar")});
  EXPECT_EQ(got.code(), Errc::kChecksumMismatch);
  // The poisoned partial is discarded: nothing to resume from, nothing
  // renamed into place.
  EXPECT_FALSE(std::filesystem::exists(out_path));
  EXPECT_FALSE(std::filesystem::exists(out_path + ".part"));
}

}  // namespace
}  // namespace bitdew
